package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Add(Vector{1, 1, 1})
	if v[0] != 2 || v[1] != 3 || v[2] != 4 {
		t.Fatalf("Add: got %v", v)
	}
	v.Sub(Vector{2, 2, 2})
	if v[0] != 0 || v[1] != 1 || v[2] != 2 {
		t.Fatalf("Sub: got %v", v)
	}
	v.Scale(3)
	if v[0] != 0 || v[1] != 3 || v[2] != 6 {
		t.Fatalf("Scale: got %v", v)
	}
	v.AddScaled(2, Vector{1, 1, 1})
	if v[0] != 2 || v[1] != 5 || v[2] != 8 {
		t.Fatalf("AddScaled: got %v", v)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestDotNormCosine(t *testing.T) {
	a := Vector{3, 4}
	if !almostEqual(Norm(a), 5) {
		t.Fatalf("Norm: got %v", Norm(a))
	}
	if !almostEqual(Dot(a, Vector{1, 0}), 3) {
		t.Fatalf("Dot: got %v", Dot(a, Vector{1, 0}))
	}
	if !almostEqual(Cosine(Vector{1, 0}, Vector{0, 1}), 0) {
		t.Fatal("orthogonal cosine should be 0")
	}
	if !almostEqual(Cosine(a, a), 1) {
		t.Fatal("self cosine should be 1")
	}
	if Cosine(Vector{0, 0}, a) != 0 {
		t.Fatal("zero-vector cosine should be 0")
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if !almostEqual(Norm(v), 1) {
		t.Fatalf("normalized norm: got %v", Norm(v))
	}
	z := Vector{0, 0}
	z.Normalize() // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector must stay zero")
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{{1, 2}, {3, 4}})
	if !almostEqual(m[0], 2) || !almostEqual(m[1], 3) {
		t.Fatalf("Mean: got %v", m)
	}
}

func TestSoftmax(t *testing.T) {
	dst := New(3)
	Softmax(dst, Vector{1, 2, 3})
	var sum float64
	for _, p := range dst {
		if p <= 0 {
			t.Fatalf("softmax produced non-positive %v", dst)
		}
		sum += p
	}
	if !almostEqual(sum, 1) {
		t.Fatalf("softmax sum: got %v", sum)
	}
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("softmax ordering lost: %v", dst)
	}
	// Extreme values must not overflow.
	Softmax(dst, Vector{1000, 1000, -1000})
	if math.IsNaN(dst[0]) || math.IsInf(dst[0], 0) {
		t.Fatalf("softmax unstable: %v", dst)
	}
}

func TestSigmoidClamps(t *testing.T) {
	if Sigmoid(100) != 1 || Sigmoid(-100) != 0 {
		t.Fatal("sigmoid should saturate at extremes")
	}
	if !almostEqual(Sigmoid(0), 0.5) {
		t.Fatalf("sigmoid(0): got %v", Sigmoid(0))
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(Vector{1, 5, 3}) != 1 {
		t.Fatal("wrong argmax")
	}
	if ArgMax(Vector{}) != -1 {
		t.Fatal("empty argmax should be -1")
	}
	if ArgMax(Vector{2, 2}) != 0 {
		t.Fatal("tie should resolve to lowest index")
	}
}

// tame maps arbitrary quick-generated floats into a numerically sane range
// so the algebraic properties are tested away from overflow.
func tame(xs []float64) Vector {
	out := make(Vector, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Mod(x, 1000)
	}
	return out
}

// Property: cosine similarity is symmetric and bounded in [-1, 1].
func TestCosineProperties(t *testing.T) {
	f := func(xs, ys [8]float64) bool {
		a, b := tame(xs[:]), tame(ys[:])
		c1, c2 := Cosine(a, b), Cosine(b, a)
		return almostEqual(c1, c2) && c1 <= 1+1e-9 && c1 >= -1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: squared distance is non-negative, zero iff identical, symmetric.
func TestDistanceProperties(t *testing.T) {
	f := func(xs, ys [6]float64) bool {
		a, b := tame(xs[:]), tame(ys[:])
		d := SquaredDistance(a, b)
		if d < 0 {
			return false
		}
		if !almostEqual(d, SquaredDistance(b, a)) {
			return false
		}
		return almostEqual(SquaredDistance(a, a), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dot product is bilinear in its first argument.
func TestDotLinearity(t *testing.T) {
	f := func(xs, ys, zs [5]float64, alphaRaw int8) bool {
		alpha := float64(alphaRaw) / 16
		a, b, c := tame(xs[:]), tame(ys[:]), tame(zs[:])
		left := a.Clone()
		left.AddScaled(alpha, b)
		want := Dot(a, c) + alpha*Dot(b, c)
		return math.Abs(Dot(left, c)-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := New(2)
	m.MulVec(dst, Vector{1, 1, 1})
	if !almostEqual(dst[0], 6) || !almostEqual(dst[1], 15) {
		t.Fatalf("MulVec: got %v", dst)
	}
	dstT := New(3)
	m.MulVecT(dstT, Vector{1, 1})
	if !almostEqual(dstT[0], 5) || !almostEqual(dstT[1], 7) || !almostEqual(dstT[2], 9) {
		t.Fatalf("MulVecT: got %v", dstT)
	}
}

// Property: MulVecT is the adjoint of MulVec: y·(Mx) == (Mᵀy)·x.
func TestMatrixAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := NewRandomMatrix(rng, 4, 6, 1)
		x := NewRandom(rng, 6, 1)
		y := NewRandom(rng, 4, 1)
		mx := New(4)
		m.MulVec(mx, x)
		mty := New(6)
		m.MulVecT(mty, y)
		if math.Abs(Dot(y, mx)-Dot(mty, x)) > 1e-9 {
			t.Fatalf("adjoint identity violated at trial %d", trial)
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuterScaled(2, Vector{1, 2}, Vector{3, 4})
	want := []float64{6, 8, 12, 16}
	for i, w := range want {
		if !almostEqual(m.Data[i], w) {
			t.Fatalf("AddOuterScaled: got %v want %v", m.Data, want)
		}
	}
}

func TestMatrixRowSharesStorage(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias matrix storage")
	}
}

// Property: the unrolled kernels agree with a straightforward serial
// reference at every length, including the 1..3 element remainders.
func TestUnrolledKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 19; n++ {
		a, b := NewRandom(rng, n, 1), NewRandom(rng, n, 1)
		var dot, sq float64
		for i := 0; i < n; i++ {
			dot += a[i] * b[i]
			d := a[i] - b[i]
			sq += d * d
		}
		if math.Abs(Dot(a, b)-dot) > 1e-12*(1+math.Abs(dot)) {
			t.Fatalf("Dot len %d: %v want %v", n, Dot(a, b), dot)
		}
		if math.Abs(SquaredDistance(a, b)-sq) > 1e-12*(1+sq) {
			t.Fatalf("SquaredDistance len %d: %v want %v", n, SquaredDistance(a, b), sq)
		}
		sum := a.Clone()
		sum.AddScaled(0.25, b)
		for i := 0; i < n; i++ {
			if !almostEqual(sum[i], a[i]+0.25*b[i]) {
				t.Fatalf("AddScaled len %d at %d", n, i)
			}
		}
	}
}

func TestFastSigmoidAccuracy(t *testing.T) {
	for x := -5.99; x <= 5.99; x += 0.0173 {
		got, want := FastSigmoid(x), Sigmoid(x)
		if math.Abs(got-want) > 2e-3 {
			t.Fatalf("FastSigmoid(%v) = %v, exact %v", x, got, want)
		}
	}
	// Outside the table, saturation: within ~sigmoid(-6) ≈ 2.5e-3 of exact.
	if FastSigmoid(100) != 1 || FastSigmoid(-100) != 0 || FastSigmoid(6) != 1 || FastSigmoid(-6) != 0 {
		t.Fatal("FastSigmoid must saturate outside the table range")
	}
	if v := FastSigmoid(math.Nextafter(sigmoidMaxExp, 0)); v <= 0.99 || v > 1 {
		t.Fatalf("FastSigmoid just below the table edge: %v", v)
	}
}

func TestDotSigmoid(t *testing.T) {
	a, b := Vector{1, 2, 3}, Vector{0.1, -0.2, 0.3}
	if got, want := DotSigmoid(a, b), FastSigmoid(Dot(a, b)); got != want {
		t.Fatalf("DotSigmoid: %v want %v", got, want)
	}
}

func TestAddScaledBoth(t *testing.T) {
	for _, n := range []int{1, 3, 4, 7, 8} {
		rng := rand.New(rand.NewSource(int64(n)))
		grad, out, in := NewRandom(rng, n, 1), NewRandom(rng, n, 1), NewRandom(rng, n, 1)
		wantGrad, wantOut := grad.Clone(), out.Clone()
		const g = 0.37
		wantGrad.AddScaled(g, wantOut) // reads out's pre-update values
		wantOut.AddScaled(g, in)
		AddScaledBoth(grad, out, in, g)
		for i := 0; i < n; i++ {
			if !almostEqual(grad[i], wantGrad[i]) || !almostEqual(out[i], wantOut[i]) {
				t.Fatalf("AddScaledBoth len %d at %d: grad %v/%v out %v/%v",
					n, i, grad[i], wantGrad[i], out[i], wantOut[i])
			}
		}
	}
}

func TestMulVecAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := Vector{10, 20}
	m.MulVecAdd(dst, Vector{1, 1, 1})
	if !almostEqual(dst[0], 16) || !almostEqual(dst[1], 35) {
		t.Fatalf("MulVecAdd: got %v", dst)
	}
}

// The kernels must never allocate: they run millions of times per training
// epoch and per inference, and the zero-alloc Infer/Encode paths are built on
// that guarantee.
func TestKernelsDoNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b, c := NewRandom(rng, 64, 1), NewRandom(rng, 64, 1), NewRandom(rng, 64, 1)
	m := NewRandomMatrix(rng, 16, 64, 1)
	dst := New(16)
	var sink float64
	for name, fn := range map[string]func(){
		"Dot":             func() { sink += Dot(a, b) },
		"AddScaled":       func() { a.AddScaled(1e-9, b) },
		"SquaredDistance": func() { sink += SquaredDistance(a, b) },
		"FastSigmoid":     func() { sink += FastSigmoid(a[0]) },
		"DotSigmoid":      func() { sink += DotSigmoid(a, b) },
		"AddScaledBoth":   func() { AddScaledBoth(a, b, c, 1e-9) },
		"MulVec":          func() { m.MulVec(dst, a) },
		"MulVecAdd":       func() { m.MulVecAdd(dst, a) },
		"MulVecT":         func() { m.MulVecT(b, dst) },
		"AddOuterScaled":  func() { m.AddOuterScaled(1e-9, dst, a) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, allocs)
		}
	}
	_ = sink
}
