//go:build !race

package vec

// RaceEnabled reports whether this is a race-detector build. See race.go.
const RaceEnabled = false
