//go:build race

package vec

// RaceEnabled reports whether this is a race-detector build. Allocation
// regression tests skip under -race: instrumentation changes the allocation
// profile and sync.Pool deliberately drops entries there.
const RaceEnabled = true
