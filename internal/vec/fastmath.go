package vec

import "math"

// Approximate transcendental kernels for the gradient inner loops.
//
// The models spend most of their training and inference time evaluating
// sigmoid(dot(a, b)) and applying the resulting scaled update, so those two
// shapes get dedicated kernels: a precomputed sigmoid lookup table (the
// EXP_TABLE idiom from the reference word2vec implementation) and fused
// helpers that do the dot product, table lookup, and two-sided update without
// intermediate allocations or extra passes.
//
// FastSigmoid is an approximation (absolute error below 1e-3, see
// TestFastSigmoidAccuracy); it is appropriate for stochastic-gradient
// updates, where the error is far below the sampling noise, but NOT for code
// whose correctness is verified by finite differences — the LSTM training
// forward pass keeps exact Sigmoid so the BPTT gradient check stays valid.

const (
	// sigmoidTableSize buckets cover sigmoidMaxExp*2 units of input; 4096
	// buckets over [-6, 6) give a step of ~0.003 and a value error ~7e-4.
	sigmoidTableSize = 4096
	sigmoidMaxExp    = 6.0
)

// sigmoidTable[i] holds sigmoid of the bucket midpoint-free left edge
// ((i/size)*2-1)*maxExp, precomputed once at init.
var sigmoidTable [sigmoidTableSize]float64

func init() {
	for i := range sigmoidTable {
		x := (float64(i)/sigmoidTableSize*2 - 1) * sigmoidMaxExp
		sigmoidTable[i] = 1 / (1 + math.Exp(-x))
	}
}

// FastSigmoid returns a table-lookup approximation of Sigmoid(x). Inputs
// outside [-6, 6) saturate to 0 or 1 — the same treatment the exact Sigmoid
// applies at +-30, just sooner, which is immaterial for gradient updates
// because (label - f) is already ~0 there.
//
//querc:hotpath
func FastSigmoid(x float64) float64 {
	if x >= sigmoidMaxExp {
		return 1
	}
	if x <= -sigmoidMaxExp {
		return 0
	}
	// The multiply can round up to exactly sigmoidTableSize for inputs one
	// ulp below the edge, so clamp.
	i := int((x + sigmoidMaxExp) * (sigmoidTableSize / (2 * sigmoidMaxExp)))
	if i >= sigmoidTableSize {
		i = sigmoidTableSize - 1
	}
	return sigmoidTable[i]
}

// DotSigmoid returns FastSigmoid(Dot(a, b)) — the fused activation kernel of
// every negative-sampling step.
//
//querc:hotpath
func DotSigmoid(a, b Vector) float64 {
	return FastSigmoid(Dot(a, b))
}

// AddScaledBoth applies the two-sided negative-sampling update in one pass:
//
//	grad += g * out   (reading out's pre-update values)
//	out  += g * in
//
// grad, out, and in must be distinct, equal-length slices. Fusing the two
// AddScaled calls halves the passes over out, which is the dominant traffic
// of doc2vec's gradient step.
//
//querc:hotpath
func AddScaledBoth(grad, out, in Vector, g float64) {
	mustSameLen(len(grad), len(out))
	mustSameLen(len(grad), len(in))
	out = out[:len(grad)] // bounds-check elimination hints
	in = in[:len(grad)]
	n := len(grad) &^ 3
	for i := 0; i < n; i += 4 {
		o0, o1, o2, o3 := out[i], out[i+1], out[i+2], out[i+3]
		grad[i] += g * o0
		grad[i+1] += g * o1
		grad[i+2] += g * o2
		grad[i+3] += g * o3
		out[i] = o0 + g*in[i]
		out[i+1] = o1 + g*in[i+1]
		out[i+2] = o2 + g*in[i+2]
		out[i+3] = o3 + g*in[i+3]
	}
	for i := n; i < len(grad); i++ {
		o := out[i]
		grad[i] += g * o
		out[i] = o + g*in[i]
	}
}
