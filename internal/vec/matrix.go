package vec

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewRandomMatrix returns a matrix with entries uniform in [-scale, scale).
func NewRandomMatrix(rng *rand.Rand, rows, cols int, scale float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// Row returns row i as a Vector sharing the matrix's backing storage.
//
//querc:hotpath
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.Rows {
		//querc:allow-alloc the Sprintf runs only on the panic path
		panic(fmt.Sprintf("vec: row %d out of range [0,%d)", i, m.Rows))
	}
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// At returns the element at (i, j).
//
//querc:hotpath
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
//
//querc:hotpath
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every entry to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes dst = m · x where x has length Cols and dst has length
// Rows. dst must not alias x.
//
//querc:hotpath
func (m *Matrix) MulVec(dst, x Vector) {
	mustSameLen(len(x), m.Cols)
	mustSameLen(len(dst), m.Rows)
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Data[i*m.Cols:(i+1)*m.Cols], x)
	}
}

// MulVecAdd accumulates dst += m · x — the fused form of MulVec used where a
// matrix-vector product lands on top of an existing partial sum (the LSTM
// gate pre-activation Wx·x + Wh·h + b), avoiding a temporary per step.
//
//querc:hotpath
func (m *Matrix) MulVecAdd(dst, x Vector) {
	mustSameLen(len(x), m.Cols)
	mustSameLen(len(dst), m.Rows)
	for i := 0; i < m.Rows; i++ {
		dst[i] += Dot(m.Data[i*m.Cols:(i+1)*m.Cols], x)
	}
}

// MulVecT computes dst = mᵀ · x where x has length Rows and dst has length
// Cols. dst must not alias x.
//
//querc:hotpath
func (m *Matrix) MulVecT(dst, x Vector) {
	mustSameLen(len(x), m.Rows)
	mustSameLen(len(dst), m.Cols)
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		dst.AddScaled(xi, m.Data[i*m.Cols:(i+1)*m.Cols])
	}
}

// AddOuterScaled adds alpha * a·bᵀ into m, where a has length Rows and b has
// length Cols. This is the rank-1 update used by gradient steps.
//
//querc:hotpath
func (m *Matrix) AddOuterScaled(alpha float64, a, b Vector) {
	mustSameLen(len(a), m.Rows)
	mustSameLen(len(b), m.Cols)
	for i := 0; i < m.Rows; i++ {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		Vector(m.Data[i*m.Cols:(i+1)*m.Cols]).AddScaled(ai, b)
	}
}

// AddScaled adds alpha*other into m element-wise.
//
//querc:hotpath
func (m *Matrix) AddScaled(alpha float64, other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("vec: matrix shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += alpha * other.Data[i]
	}
}
