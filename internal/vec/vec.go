// Package vec provides the small dense linear-algebra kernel used by the
// embedding models and classifiers in this repository.
//
// Everything is float64 and row-major, and the package stays dependency-free
// by design (see DESIGN.md). The hot kernels — Dot, AddScaled,
// SquaredDistance, the matrix-vector products — are 4-way unrolled so the
// training and inference inner loops of the models built on top (doc2vec,
// lstm) keep four independent multiply-add chains in flight per iteration.
// fastmath.go adds the approximate transcendental kernels (FastSigmoid and
// the fused DotSigmoid / AddScaledBoth helpers) used by the gradient loops;
// see DESIGN.md "Performance model" for where exact math is still required.
package vec

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense float64 vector.
type Vector []float64

// New returns a zero vector of length n.
func New(n int) Vector { return make(Vector, n) }

// NewRandom returns a vector of length n with entries drawn uniformly from
// [-scale, scale) using rng.
func NewRandom(rng *rand.Rand, n int, scale float64) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * scale
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every entry of v to 0.
//
//querc:hotpath
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Add adds other into v element-wise. It panics if lengths differ.
//
//querc:hotpath
func (v Vector) Add(other Vector) {
	mustSameLen(len(v), len(other))
	other = other[:len(v)] // bounds-check elimination hint
	n := len(v) &^ 3
	for i := 0; i < n; i += 4 {
		v[i] += other[i]
		v[i+1] += other[i+1]
		v[i+2] += other[i+2]
		v[i+3] += other[i+3]
	}
	for i := n; i < len(v); i++ {
		v[i] += other[i]
	}
}

// AddScaled adds alpha*other into v element-wise.
//
//querc:hotpath
func (v Vector) AddScaled(alpha float64, other Vector) {
	mustSameLen(len(v), len(other))
	other = other[:len(v)] // bounds-check elimination hint
	n := len(v) &^ 3
	for i := 0; i < n; i += 4 {
		v[i] += alpha * other[i]
		v[i+1] += alpha * other[i+1]
		v[i+2] += alpha * other[i+2]
		v[i+3] += alpha * other[i+3]
	}
	for i := n; i < len(v); i++ {
		v[i] += alpha * other[i]
	}
}

// Sub subtracts other from v element-wise.
//
//querc:hotpath
func (v Vector) Sub(other Vector) {
	mustSameLen(len(v), len(other))
	for i := range v {
		v[i] -= other[i]
	}
}

// Scale multiplies every entry of v by alpha.
//
//querc:hotpath
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product of v and other. The sum runs over four
// independent accumulators, so the result can differ from a strictly serial
// sum in the last few ulps.
//
//querc:hotpath
func Dot(a, b Vector) float64 {
	mustSameLen(len(a), len(b))
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for i := n; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm returns the Euclidean norm of v.
//
//querc:hotpath
func Norm(v Vector) float64 { return math.Sqrt(Dot(v, v)) }

// Normalize scales v to unit length in place. A zero vector is left
// unchanged.
//
//querc:hotpath
func (v Vector) Normalize() {
	n := Norm(v)
	if n == 0 {
		return
	}
	v.Scale(1 / n)
}

// Cosine returns the cosine similarity between a and b, or 0 if either is the
// zero vector.
//
//querc:hotpath
func Cosine(a, b Vector) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// SquaredDistance returns the squared Euclidean distance between a and b.
//
//querc:hotpath
func SquaredDistance(a, b Vector) float64 {
	mustSameLen(len(a), len(b))
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for i := n; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Distance returns the Euclidean distance between a and b.
//
//querc:hotpath
func Distance(a, b Vector) float64 { return math.Sqrt(SquaredDistance(a, b)) }

// Mean returns the element-wise mean of vs. It panics if vs is empty.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("vec: Mean of empty slice")
	}
	out := New(len(vs[0]))
	for _, v := range vs {
		out.Add(v)
	}
	out.Scale(1 / float64(len(vs)))
	return out
}

// Sigmoid returns 1/(1+exp(-x)), numerically clamped so that extreme inputs
// saturate instead of overflowing.
//
//querc:hotpath
func Sigmoid(x float64) float64 {
	switch {
	case x > 30:
		return 1
	case x < -30:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// Tanh is math.Tanh, re-exported for symmetry with Sigmoid.
//
//querc:hotpath
func Tanh(x float64) float64 { return math.Tanh(x) }

// Softmax writes the softmax of src into dst (which may alias src) and
// returns dst. It subtracts the maximum for numerical stability.
//
//querc:hotpath
func Softmax(dst, src Vector) Vector {
	mustSameLen(len(dst), len(src))
	maxv := math.Inf(-1)
	for _, x := range src {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for i, x := range src {
		e := math.Exp(x - maxv)
		dst[i] = e
		sum += e
	}
	if sum > 0 {
		for i := range dst {
			dst[i] /= sum
		}
	}
	return dst
}

// ArgMax returns the index of the largest entry, or -1 for an empty vector.
// Ties resolve to the lowest index.
//
//querc:hotpath
func ArgMax(v Vector) int {
	if len(v) == 0 {
		return -1
	}
	best, bestV := 0, v[0]
	for i := 1; i < len(v); i++ {
		if v[i] > bestV {
			best, bestV = i, v[i]
		}
	}
	return best
}

//querc:allow-alloc the Sprintf runs only on the panic path
func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("vec: length mismatch %d != %d", a, b))
	}
}
