package cluster

import (
	"math"
	"math/rand"
)

// DistanceFunc is a pairwise distance between points identified by index.
// The K-medoids baseline uses it to carry the Chaudhuri-style custom workload
// distance, which is defined on query structure rather than vectors.
type DistanceFunc func(i, j int) float64

// KMedoidsResult is the outcome of one PAM run.
type KMedoidsResult struct {
	Medoids    []int // point indices chosen as medoids
	Assignment []int // point index -> position in Medoids
	Cost       float64
}

// KMedoids clusters n points into k clusters with the PAM build+swap
// heuristic under dist. maxIter bounds swap rounds (<=0 means 50).
//
// This is the baseline summarizer of §5.1 ("variants of the approach of
// Chaudhuri et al., which uses K-medioids to cluster the queries and selects
// a witness query from each cluster").
func KMedoids(rng *rand.Rand, n, k, maxIter int, dist DistanceFunc) *KMedoidsResult {
	if n == 0 {
		return &KMedoidsResult{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 50
	}

	// BUILD: greedy seeding — first medoid minimizes total distance, each
	// subsequent medoid maximizes cost reduction.
	medoids := make([]int, 0, k)
	inSet := make([]bool, n)
	best, bestCost := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		var c float64
		for j := 0; j < n; j++ {
			c += dist(i, j)
		}
		if c < bestCost {
			best, bestCost = i, c
		}
	}
	medoids = append(medoids, best)
	inSet[best] = true
	nearest := make([]float64, n)
	for j := 0; j < n; j++ {
		nearest[j] = dist(best, j)
	}
	for len(medoids) < k {
		bestGain, bestIdx := -1.0, -1
		for cand := 0; cand < n; cand++ {
			if inSet[cand] {
				continue
			}
			var gain float64
			for j := 0; j < n; j++ {
				if d := dist(cand, j); d < nearest[j] {
					gain += nearest[j] - d
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, cand
			}
		}
		if bestIdx < 0 {
			break
		}
		medoids = append(medoids, bestIdx)
		inSet[bestIdx] = true
		for j := 0; j < n; j++ {
			if d := dist(bestIdx, j); d < nearest[j] {
				nearest[j] = d
			}
		}
	}

	assign := make([]int, n)
	cost := assignMedoids(n, medoids, dist, assign)

	// SWAP: try replacing a medoid with a non-medoid while it improves cost.
	for iter := 0; iter < maxIter; iter++ {
		improved := false
		for mi := range medoids {
			for cand := 0; cand < n; cand++ {
				if inSet[cand] {
					continue
				}
				old := medoids[mi]
				medoids[mi] = cand
				newCost := assignMedoids(n, medoids, dist, nil)
				if newCost < cost-1e-12 {
					inSet[old] = false
					inSet[cand] = true
					cost = newCost
					improved = true
				} else {
					medoids[mi] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	cost = assignMedoids(n, medoids, dist, assign)
	return &KMedoidsResult{Medoids: medoids, Assignment: assign, Cost: cost}
}

// assignMedoids computes the total cost of assigning every point to its
// nearest medoid, optionally recording assignments.
func assignMedoids(n int, medoids []int, dist DistanceFunc, assign []int) float64 {
	var total float64
	for j := 0; j < n; j++ {
		best, bestD := 0, math.Inf(1)
		for mi, m := range medoids {
			if d := dist(m, j); d < bestD {
				best, bestD = mi, d
			}
		}
		if assign != nil {
			assign[j] = best
		}
		total += bestD
	}
	return total
}
