package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"querc/internal/vec"
)

// threeBlobs returns well-separated gaussian-ish clusters.
func threeBlobs(rng *rand.Rand, perCluster int) ([]vec.Vector, []int) {
	centers := []vec.Vector{{0, 0}, {10, 10}, {-10, 10}}
	var pts []vec.Vector
	var truth []int
	for c, center := range centers {
		for i := 0; i < perCluster; i++ {
			p := vec.Vector{
				center[0] + rng.NormFloat64()*0.5,
				center[1] + rng.NormFloat64()*0.5,
			}
			pts = append(pts, p)
			truth = append(truth, c)
		}
	}
	return pts, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, truth := threeBlobs(rng, 40)
	res := KMeans(rng, pts, 3, 100)
	if err := res.Validate(pts); err != nil {
		t.Fatal(err)
	}
	// All points with the same true cluster must share an assignment.
	for c := 0; c < 3; c++ {
		first := -1
		for i, tc := range truth {
			if tc != c {
				continue
			}
			if first == -1 {
				first = res.Assignment[i]
			} else if res.Assignment[i] != first {
				t.Fatalf("true cluster %d split across k-means clusters", c)
			}
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if res := KMeans(rng, nil, 3, 10); len(res.Assignment) != 0 {
		t.Fatal("empty input should produce empty result")
	}
	// k greater than n clamps.
	pts := []vec.Vector{{1, 1}, {2, 2}}
	res := KMeans(rng, pts, 10, 10)
	if len(res.Centroids) > 2 {
		t.Fatalf("k not clamped: %d", len(res.Centroids))
	}
	// Identical points: must terminate with SSE 0.
	same := []vec.Vector{{5, 5}, {5, 5}, {5, 5}}
	res = KMeans(rng, same, 2, 10)
	if res.SSE != 0 {
		t.Fatalf("identical points SSE: %v", res.SSE)
	}
}

func TestKMeansK1SSEEqualsVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := threeBlobs(rng, 10)
	res := KMeans(rng, pts, 1, 50)
	mean := vec.Mean(pts)
	var want float64
	for _, p := range pts {
		want += vec.SquaredDistance(p, mean)
	}
	if math.Abs(res.SSE-want) > 1e-6*want {
		t.Fatalf("k=1 SSE %v != total variance %v", res.SSE, want)
	}
}

func TestRepresentativesAreClusterMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, _ := threeBlobs(rng, 30)
	res := KMeans(rng, pts, 3, 100)
	reps := res.Representatives(pts)
	if len(reps) != 3 {
		t.Fatalf("want 3 representatives, got %d", len(reps))
	}
	seen := map[int]bool{}
	for _, r := range reps {
		if r < 0 || r >= len(pts) {
			t.Fatalf("rep index out of range: %d", r)
		}
		c := res.Assignment[r]
		if seen[c] {
			t.Fatalf("two representatives for cluster %d", c)
		}
		seen[c] = true
		// The representative must be the closest member to its centroid.
		d := vec.SquaredDistance(pts[r], res.Centroids[c])
		for i, p := range pts {
			if res.Assignment[i] == c && vec.SquaredDistance(p, res.Centroids[c]) < d-1e-12 {
				t.Fatalf("rep %d is not nearest to centroid %d", r, c)
			}
		}
	}
}

func TestElbowFindsThree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := threeBlobs(rng, 40)
	k, sses := ElbowK(rng, pts, 10, 0.1)
	if k < 3 || k > 5 {
		t.Fatalf("elbow k = %d (sses %v), want ~3", k, sses)
	}
}

// Property: k-means SSE is non-increasing in K (on the same data/seed grid,
// allowing small tolerance for local minima).
func TestSSEDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := threeBlobs(rng, 25)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res := KMeans(rand.New(rand.NewSource(7)), pts, k, 50)
		if res.SSE > prev*1.1 {
			t.Fatalf("SSE increased sharply at k=%d: %v -> %v", k, prev, res.SSE)
		}
		if res.SSE < prev {
			prev = res.SSE
		}
	}
}

// Property: every k-means result validates (assignment optimality).
func TestKMeansAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN, rawK uint8) bool {
		n := int(rawN)%50 + 5
		k := int(rawK)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([]vec.Vector, n)
		for i := range pts {
			pts[i] = vec.NewRandom(rng, 3, 5)
		}
		res := KMeans(rng, pts, k, 30)
		return res.Validate(pts) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKMedoidsBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, truth := threeBlobs(rng, 20)
	dist := func(i, j int) float64 { return vec.Distance(pts[i], pts[j]) }
	res := KMedoids(rng, len(pts), 3, 20, dist)
	if len(res.Medoids) != 3 {
		t.Fatalf("medoids: %v", res.Medoids)
	}
	// Medoid assignment should match blob structure.
	for c := 0; c < 3; c++ {
		first := -1
		for i, tc := range truth {
			if tc != c {
				continue
			}
			if first == -1 {
				first = res.Assignment[i]
			} else if res.Assignment[i] != first {
				t.Fatalf("true cluster %d split by k-medoids", c)
			}
		}
	}
	// Cost must equal the recomputed assignment cost.
	var want float64
	for j := range pts {
		best := math.Inf(1)
		for _, m := range res.Medoids {
			if d := dist(m, j); d < best {
				best = d
			}
		}
		want += best
	}
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Fatalf("cost mismatch: %v vs %v", res.Cost, want)
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	res := KMedoids(rng, 0, 3, 5, func(i, j int) float64 { return 0 })
	if len(res.Medoids) != 0 {
		t.Fatal("empty input should yield no medoids")
	}
	res = KMedoids(rng, 2, 5, 5, func(i, j int) float64 { return 1 })
	if len(res.Medoids) > 2 {
		t.Fatalf("k not clamped: %v", res.Medoids)
	}
}
