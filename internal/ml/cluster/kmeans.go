// Package cluster provides the unsupervised learners used by the workload
// summarization experiment (paper §5.1): k-means with k-means++ seeding and
// the "elbow" K selector, plus K-medoids (PAM) for the Chaudhuri-et-al.-style
// baseline that clusters under a custom distance function.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"querc/internal/vec"
)

// KMeansResult is the outcome of one k-means run.
type KMeansResult struct {
	Centroids  []vec.Vector
	Assignment []int   // point index -> cluster index
	SSE        float64 // sum of squared distances to assigned centroids
	Iterations int
}

// KMeans clusters points into k clusters using Lloyd's algorithm with
// k-means++ initialization. maxIter bounds the Lloyd iterations (<=0 means
// 100). It panics only on programmer error (k < 1); k > len(points) is
// clamped.
func KMeans(rng *rand.Rand, points []vec.Vector, k, maxIter int) *KMeansResult {
	if k < 1 {
		panic("cluster: k < 1")
	}
	if len(points) == 0 {
		return &KMeansResult{}
	}
	if k > len(points) {
		k = len(points)
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	centroids := seedPlusPlus(rng, points, k)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}

	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := vec.SquaredDistance(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids; empty clusters are re-seeded from the point
		// farthest from its centroid to keep exactly k clusters.
		counts := make([]int, k)
		next := make([]vec.Vector, k)
		for c := range next {
			next[c] = vec.New(len(points[0]))
		}
		for i, p := range points {
			next[assign[i]].Add(p)
			counts[assign[i]]++
		}
		for c := range next {
			if counts[c] == 0 {
				next[c] = points[farthestPoint(points, centroids, assign)].Clone()
				continue
			}
			next[c].Scale(1 / float64(counts[c]))
		}
		centroids = next
	}

	res := &KMeansResult{Centroids: centroids, Assignment: assign, Iterations: iter}
	for i, p := range points {
		res.SSE += vec.SquaredDistance(p, centroids[assign[i]])
	}
	return res
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(rng *rand.Rand, points []vec.Vector, k int) []vec.Vector {
	centroids := make([]vec.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))].Clone())
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var sum float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := vec.SquaredDistance(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		if sum == 0 {
			// All remaining points coincide with existing centroids.
			centroids = append(centroids, points[rng.Intn(len(points))].Clone())
			continue
		}
		r := rng.Float64() * sum
		var acc float64
		pick := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, points[pick].Clone())
	}
	return centroids
}

func farthestPoint(points []vec.Vector, centroids []vec.Vector, assign []int) int {
	worst, worstD := 0, -1.0
	for i, p := range points {
		d := vec.SquaredDistance(p, centroids[assign[i]])
		if d > worstD {
			worst, worstD = i, d
		}
	}
	return worst
}

// Representatives returns, for each cluster, the index of the point nearest
// its centroid — the "witness query" selection of §5.1.
func (r *KMeansResult) Representatives(points []vec.Vector) []int {
	if len(r.Centroids) == 0 {
		return nil
	}
	reps := make([]int, len(r.Centroids))
	best := make([]float64, len(r.Centroids))
	for c := range best {
		best[c] = math.Inf(1)
		reps[c] = -1
	}
	for i, p := range points {
		c := r.Assignment[i]
		if d := vec.SquaredDistance(p, r.Centroids[c]); d < best[c] {
			best[c] = d
			reps[c] = i
		}
	}
	out := reps[:0]
	for _, idx := range reps {
		if idx >= 0 {
			out = append(out, idx)
		}
	}
	return out
}

// ElbowK runs k-means over a grid of K values and picks the elbow of the SSE
// curve: the smallest K whose marginal SSE improvement drops below frac
// (e.g. 0.1) of the previous improvement — the "intentionally simple method"
// of §5.1. For maxK > 20 the grid is coarsened (step maxK/20) to keep the
// loop affordable; the returned slice holds the SSE at each probed K in
// ascending-K order.
func ElbowK(rng *rand.Rand, points []vec.Vector, maxK int, frac float64) (int, []float64) {
	if maxK < 1 {
		maxK = 1
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	if frac <= 0 {
		frac = 0.1
	}
	step := maxK / 20
	if step < 1 {
		step = 1
	}
	var ks []int
	for k := 1; k <= maxK; k += step {
		ks = append(ks, k)
	}
	sses := make([]float64, len(ks))
	for i, k := range ks {
		sses[i] = KMeans(rng, points, k, 30).SSE
	}
	if len(ks) <= 2 {
		return ks[len(ks)-1], sses
	}
	prevDrop := sses[0] - sses[1]
	for i := 2; i < len(ks); i++ {
		drop := sses[i-1] - sses[i]
		if prevDrop > 0 && drop < frac*prevDrop {
			return ks[i], sses
		}
		if drop > 0 {
			prevDrop = drop
		}
	}
	return maxK, sses
}

// Validate reports whether the result is internally consistent for the given
// points; used by property tests.
func (r *KMeansResult) Validate(points []vec.Vector) error {
	if len(r.Assignment) != len(points) {
		return fmt.Errorf("cluster: %d assignments for %d points", len(r.Assignment), len(points))
	}
	for i, c := range r.Assignment {
		if c < 0 || c >= len(r.Centroids) {
			return fmt.Errorf("cluster: point %d assigned to invalid cluster %d", i, c)
		}
		// Assignment optimality: no other centroid is strictly closer.
		d := vec.SquaredDistance(points[i], r.Centroids[c])
		for c2, cent := range r.Centroids {
			if vec.SquaredDistance(points[i], cent) < d-1e-9 {
				return fmt.Errorf("cluster: point %d closer to centroid %d than assigned %d", i, c2, c)
			}
		}
	}
	return nil
}
