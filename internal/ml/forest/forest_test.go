package forest

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"querc/internal/vec"
)

// xorData: a dataset a single axis-aligned split cannot solve but a tree
// ensemble can.
func xorData(rng *rand.Rand, n int) ([]vec.Vector, []int) {
	X := make([]vec.Vector, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = vec.Vector{a, b, rng.Float64() * 0.01}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func TestLearnsXor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := xorData(rng, 400)
	f, err := Train(X, y, 2, Config{NumTrees: 40, MinSamplesLeaf: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	testX, testY := xorData(rng, 200)
	for i := range testX {
		if f.Predict(testX[i]) == testY[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(testX)); acc < 0.9 {
		t.Fatalf("xor accuracy %.2f < 0.9", acc)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Train(nil, nil, 2, Config{}); err == nil {
		t.Fatal("empty training set must fail")
	}
	if _, err := Train([]vec.Vector{{1}}, []int{0, 1}, 2, Config{}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := Train([]vec.Vector{{1}}, []int{5}, 2, Config{}); err == nil {
		t.Fatal("out-of-range label must fail")
	}
	if _, err := Train([]vec.Vector{{1}}, []int{0}, 0, Config{}); err == nil {
		t.Fatal("numClasses < 1 must fail")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := xorData(rng, 150)
	f1, err := Train(X, y, 2, Config{NumTrees: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(X, y, 2, Config{NumTrees: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	probe := vec.Vector{0.3, 0.8, 0}
	p1, p2 := f1.PredictProba(probe), f2.PredictProba(probe)
	for c := range p1 {
		if p1[c] != p2[c] {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestProbaSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := xorData(rng, 100)
	f, err := Train(X, y, 2, Config{NumTrees: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	quickF := func(a, b float64) bool {
		probs := f.PredictProba(vec.Vector{a, b, 0})
		var sum float64
		for _, p := range probs {
			if p < 0 {
				return false
			}
			sum += p
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(quickF, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPureLeafShortCircuit(t *testing.T) {
	// All one class: prediction must always be that class.
	X := []vec.Vector{{1, 2}, {3, 4}, {5, 6}}
	y := []int{1, 1, 1}
	f, err := Train(X, y, 3, Config{NumTrees: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Predict(vec.Vector{100, -100}) != 1 {
		t.Fatal("pure training set must predict the single class")
	}
}

func TestMaxDepthLimitsTreeSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := xorData(rng, 300)
	shallow, err := Train(X, y, 2, Config{NumTrees: 5, MaxDepth: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Train(X, y, 2, Config{NumTrees: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sizeOf := func(f *Forest) int {
		n := 0
		for _, tr := range f.Trees {
			n += len(tr.Nodes)
		}
		return n
	}
	if sizeOf(shallow) >= sizeOf(deep) {
		t.Fatalf("depth cap did not shrink trees: %d vs %d", sizeOf(shallow), sizeOf(deep))
	}
	// Depth-2 trees have at most 7 nodes.
	for _, tr := range shallow.Trees {
		if len(tr.Nodes) > 7 {
			t.Fatalf("depth-2 tree has %d nodes", len(tr.Nodes))
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := xorData(rng, 120)
	f, err := Train(X, y, 2, Config{NumTrees: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := vec.Vector{rng.Float64(), rng.Float64(), 0}
		if f.Predict(p) != f2.Predict(p) {
			t.Fatal("loaded forest predicts differently")
		}
	}
}

// Property: predictions are always valid class IDs.
func TestPredictionRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X := make([]vec.Vector, 60)
	y := make([]int, 60)
	for i := range X {
		X[i] = vec.NewRandom(rng, 4, 1)
		y[i] = rng.Intn(5)
	}
	f, err := Train(X, y, 5, Config{NumTrees: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b, c, d float64) bool {
		cls := f.Predict(vec.Vector{a, b, c, d})
		return cls >= 0 && cls < 5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
