// Package forest implements an extremely-randomized decision-tree ensemble
// (ExtraTrees). The paper's labeling experiments (§5.2) train "randomized
// decision trees" over learned query vectors to predict username and customer
// account; this package is that labeler.
//
// ExtraTrees differ from classic random forests in two ways that make them a
// good fit for dense learned embeddings: splits use random thresholds
// (cheap, strong variance reduction) and trees train on the full sample
// rather than bootstrap replicas.
package forest

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"querc/internal/vec"
)

// Config holds the ensemble hyper-parameters.
type Config struct {
	NumTrees       int // ensemble size
	MaxDepth       int // 0 means unlimited
	MinSamplesLeaf int // stop splitting below this node size
	NumFeatures    int // candidate features per split; 0 means sqrt(dim)
	Seed           int64
}

// DefaultConfig returns the hyper-parameters used by the experiments.
func DefaultConfig() Config {
	return Config{NumTrees: 40, MaxDepth: 0, MinSamplesLeaf: 2, Seed: 1}
}

func (c *Config) fillDefaults(dim int) {
	d := DefaultConfig()
	if c.NumTrees <= 0 {
		c.NumTrees = d.NumTrees
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = d.MinSamplesLeaf
	}
	if c.NumFeatures <= 0 {
		c.NumFeatures = int(math.Sqrt(float64(dim)))
		if c.NumFeatures < 1 {
			c.NumFeatures = 1
		}
	}
}

// node is one tree node in flattened form (gob-friendly).
type node struct {
	Feature   int     // split feature; -1 for leaves
	Threshold float64 // go left when x[Feature] < Threshold
	Left      int     // child indices into the tree's node slice
	Right     int
	Class     int // majority class (leaves)
}

// tree is a single extremely-randomized tree.
type tree struct {
	Nodes []node
}

// Forest is a trained ensemble classifier.
type Forest struct {
	Cfg        Config
	Trees      []tree
	NumClasses int
	Dim        int
}

// Train fits an ExtraTrees ensemble on X (feature vectors) and y (class IDs
// in [0, numClasses)). It returns an error on malformed input.
func Train(X []vec.Vector, y []int, numClasses int, cfg Config) (*Forest, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("forest: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("forest: %d samples but %d labels", len(X), len(y))
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("forest: numClasses %d < 1", numClasses)
	}
	for i, c := range y {
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("forest: label %d of sample %d out of range [0,%d)", c, i, numClasses)
		}
	}
	dim := len(X[0])
	cfg.fillDefaults(dim)

	f := &Forest{Cfg: cfg, NumClasses: numClasses, Dim: dim}
	f.Trees = make([]tree, cfg.NumTrees)
	for t := range f.Trees {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = i
		}
		b := &builder{X: X, y: y, numClasses: numClasses, cfg: cfg, rng: rng}
		b.grow(idx, 0)
		f.Trees[t] = tree{Nodes: b.nodes}
	}
	return f, nil
}

type builder struct {
	X          []vec.Vector
	y          []int
	numClasses int
	cfg        Config
	rng        *rand.Rand
	nodes      []node
}

// grow builds the subtree over samples idx and returns its node index.
func (b *builder) grow(idx []int, depth int) int {
	counts := make([]int, b.numClasses)
	for _, i := range idx {
		counts[b.y[i]]++
	}
	majority, pure := majorityClass(counts)

	stop := pure ||
		len(idx) < 2*b.cfg.MinSamplesLeaf ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth)
	if !stop {
		if feat, thr, ok := b.bestRandomSplit(idx); ok {
			var left, right []int
			for _, i := range idx {
				if b.X[i][feat] < thr {
					left = append(left, i)
				} else {
					right = append(right, i)
				}
			}
			if len(left) >= b.cfg.MinSamplesLeaf && len(right) >= b.cfg.MinSamplesLeaf {
				self := len(b.nodes)
				b.nodes = append(b.nodes, node{Feature: feat, Threshold: thr})
				l := b.grow(left, depth+1)
				r := b.grow(right, depth+1)
				b.nodes[self].Left = l
				b.nodes[self].Right = r
				return self
			}
		}
	}
	self := len(b.nodes)
	b.nodes = append(b.nodes, node{Feature: -1, Class: majority})
	return self
}

// bestRandomSplit draws NumFeatures random (feature, uniform threshold)
// candidates and returns the one with the lowest weighted Gini impurity.
func (b *builder) bestRandomSplit(idx []int) (feat int, thr float64, ok bool) {
	dim := b.Dim()
	bestGini := math.Inf(1)
	for k := 0; k < b.cfg.NumFeatures; k++ {
		f := b.rng.Intn(dim)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := b.X[i][f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		t := lo + b.rng.Float64()*(hi-lo)
		g := b.splitGini(idx, f, t)
		if g < bestGini {
			bestGini, feat, thr, ok = g, f, t, true
		}
	}
	return feat, thr, ok
}

func (b *builder) Dim() int { return len(b.X[0]) }

func (b *builder) splitGini(idx []int, feat int, thr float64) float64 {
	lc := make([]int, b.numClasses)
	rc := make([]int, b.numClasses)
	var ln, rn int
	for _, i := range idx {
		if b.X[i][feat] < thr {
			lc[b.y[i]]++
			ln++
		} else {
			rc[b.y[i]]++
			rn++
		}
	}
	if ln == 0 || rn == 0 {
		return math.Inf(1)
	}
	n := float64(ln + rn)
	return float64(ln)/n*gini(lc, ln) + float64(rn)/n*gini(rc, rn)
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

func majorityClass(counts []int) (cls int, pure bool) {
	best, total, nonzero := 0, 0, 0
	for c, n := range counts {
		total += n
		if n > 0 {
			nonzero++
		}
		if n > counts[best] {
			best = c
		}
	}
	return best, nonzero <= 1 && total > 0
}

// Predict returns the majority-vote class for x.
func (f *Forest) Predict(x vec.Vector) int {
	probs := f.PredictProba(x)
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best
}

// PredictProba returns the per-class vote fractions for x.
func (f *Forest) PredictProba(x vec.Vector) []float64 {
	votes := make([]float64, f.NumClasses)
	for _, t := range f.Trees {
		votes[t.predict(x)]++
	}
	if len(f.Trees) > 0 {
		for c := range votes {
			votes[c] /= float64(len(f.Trees))
		}
	}
	return votes
}

func (t *tree) predict(x vec.Vector) int {
	i := 0
	for {
		n := t.Nodes[i]
		if n.Feature < 0 {
			return n.Class
		}
		if n.Feature < len(x) && x[n.Feature] < n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Save writes the forest in gob format.
func (f *Forest) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(f)
}

// Load reads a forest previously written by Save.
func Load(r io.Reader) (*Forest, error) {
	var f Forest
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("forest: load: %w", err)
	}
	return &f, nil
}
