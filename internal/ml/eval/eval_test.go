package eval

import (
	"math/rand"
	"testing"

	"querc/internal/vec"
)

// thresholdClassifier predicts 1 when x[0] > 0.5.
type thresholdClassifier struct{}

func (thresholdClassifier) Predict(x vec.Vector) int {
	if x[0] > 0.5 {
		return 1
	}
	return 0
}

func TestFoldsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	folds := Folds(rng, 103, 10)
	if len(folds) != 10 {
		t.Fatalf("folds: %d", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("covered %d of 103", len(seen))
	}
	// Near-equal sizes.
	for _, f := range folds {
		if len(f) < 10 || len(f) > 11 {
			t.Fatalf("unbalanced fold size %d", len(f))
		}
	}
}

func TestFoldsSmallN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	folds := Folds(rng, 3, 10)
	if len(folds) != 3 {
		t.Fatalf("k should clamp to n: %d", len(folds))
	}
}

func TestCrossValidateLearnable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	X := make([]vec.Vector, n)
	y := make([]int, n)
	for i := range X {
		X[i] = vec.Vector{rng.Float64()}
		if X[i][0] > 0.5 {
			y[i] = 1
		}
	}
	acc, preds, err := CrossValidate(rng, X, y, 10, func(trX []vec.Vector, trY []int) (Classifier, error) {
		return thresholdClassifier{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1.0 {
		t.Fatalf("perfect classifier should score 1.0, got %v", acc)
	}
	if len(preds) != n {
		t.Fatalf("preds length %d", len(preds))
	}
}

func TestCrossValidateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, _, err := CrossValidate(rng, nil, nil, 5, nil); err == nil {
		t.Fatal("empty dataset must error")
	}
	if _, _, err := CrossValidate(rng, []vec.Vector{{1}}, []int{0, 1}, 5, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestAccuracy(t *testing.T) {
	if Accuracy([]int{1, 2, 3}, []int{1, 0, 3}) != 2.0/3 {
		t.Fatal("accuracy wrong")
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	if Accuracy([]int{1}, []int{1, 2}) != 0 {
		t.Fatal("mismatched lengths should be 0")
	}
}

func TestGroupedAccuracy(t *testing.T) {
	preds := []int{1, 1, 0, 0}
	truth := []int{1, 0, 0, 1}
	group := []string{"a", "a", "b", "b"}
	acc, n := GroupedAccuracy(preds, truth, group)
	if acc["a"] != 0.5 || acc["b"] != 0.5 {
		t.Fatalf("grouped acc: %v", acc)
	}
	if n["a"] != 2 || n["b"] != 2 {
		t.Fatalf("group counts: %v", n)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := ConfusionMatrix([]int{0, 1, 1}, []int{0, 0, 1}, 2)
	if m[0][0] != 1 || m[0][1] != 1 || m[1][1] != 1 || m[1][0] != 0 {
		t.Fatalf("confusion: %v", m)
	}
}

func TestMajorityBaseline(t *testing.T) {
	if got := MajorityBaseline([]int{0, 0, 0, 1}, 2); got != 0.75 {
		t.Fatalf("majority: %v", got)
	}
	if MajorityBaseline(nil, 2) != 0 {
		t.Fatal("empty majority should be 0")
	}
}

// Every sample is predicted by a model that did not train on it: verify via
// a "cheating" classifier that memorizes its training set — held-out samples
// must be invisible to it.
func TestCrossValidateHoldsOut(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 50
	X := make([]vec.Vector, n)
	y := make([]int, n)
	for i := range X {
		X[i] = vec.Vector{float64(i)}
		y[i] = i % 2
	}
	_, _, err := CrossValidate(rng, X, y, 5, func(trX []vec.Vector, trY []int) (Classifier, error) {
		if len(trX) != n-n/5 {
			t.Fatalf("training split size %d, want %d", len(trX), n-n/5)
		}
		return thresholdClassifier{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShouldPromote pins the deployment gate's behavior: clear winners and
// ties promote, clear losers never do, and the standard-error discount only
// forgives sampling noise, not real regressions.
func TestShouldPromote(t *testing.T) {
	cases := []struct {
		name           string
		oldAcc, newAcc float64
		n              int
		minGain        float64
		want           bool
	}{
		{"clear win", 0.60, 0.80, 200, 0, true},
		{"tie", 0.70, 0.70, 200, 0, true},
		{"clear loss", 0.80, 0.60, 200, 0, false},
		{"within noise", 0.80, 0.79, 50, 0, true}, // 1 stderr at n=50 is ~0.057
		{"beyond noise", 0.80, 0.60, 10000, 0, false},
		{"min gain blocks tie", 0.70, 0.70, 0, 0.05, false},
		{"min gain met", 0.70, 0.76, 0, 0.05, true},
		{"no holdout, strict", 0.70, 0.69, 0, 0, false},
	}
	for _, tc := range cases {
		if got := ShouldPromote(tc.oldAcc, tc.newAcc, tc.n, tc.minGain); got != tc.want {
			t.Errorf("%s: ShouldPromote(%v, %v, %d, %v) = %v, want %v",
				tc.name, tc.oldAcc, tc.newAcc, tc.n, tc.minGain, got, tc.want)
		}
	}
}
