// Package eval provides the model-evaluation harness used by the labeling
// experiments: stratified-enough k-fold cross-validation, accuracy and
// per-group accuracy, and confusion matrices. The paper reports 10-fold CV
// scores (Table 1) and per-account accuracies (Table 2); both come from here.
package eval

import (
	"fmt"
	"math"
	"math/rand"

	"querc/internal/vec"
)

// Classifier is the minimal predictor interface the harness needs. Both
// forest.Forest and any core.Labeler-backed model satisfy it via adapters.
type Classifier interface {
	Predict(x vec.Vector) int
}

// TrainFunc fits a classifier on a training split.
type TrainFunc func(X []vec.Vector, y []int) (Classifier, error)

// Folds partitions n indices into k shuffled folds of near-equal size.
func Folds(rng *rand.Rand, n, k int) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// CrossValidate runs k-fold cross-validation and returns the overall accuracy
// (total correct over total predictions) together with per-sample predictions
// indexed like X (every sample is predicted exactly once, by the model that
// did not train on it).
func CrossValidate(rng *rand.Rand, X []vec.Vector, y []int, k int, train TrainFunc) (float64, []int, error) {
	if len(X) != len(y) {
		return 0, nil, fmt.Errorf("eval: %d samples but %d labels", len(X), len(y))
	}
	if len(X) == 0 {
		return 0, nil, fmt.Errorf("eval: empty dataset")
	}
	folds := Folds(rng, len(X), k)
	preds := make([]int, len(X))
	correct := 0
	for fi, test := range folds {
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		var trX []vec.Vector
		var trY []int
		for i := range X {
			if !inTest[i] {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		clf, err := train(trX, trY)
		if err != nil {
			return 0, nil, fmt.Errorf("eval: fold %d: %w", fi, err)
		}
		for _, i := range test {
			preds[i] = clf.Predict(X[i])
			if preds[i] == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(X)), preds, nil
}

// Accuracy returns the fraction of preds equal to truth.
func Accuracy(preds, truth []int) float64 {
	if len(preds) != len(truth) || len(preds) == 0 {
		return 0
	}
	c := 0
	for i := range preds {
		if preds[i] == truth[i] {
			c++
		}
	}
	return float64(c) / float64(len(preds))
}

// GroupedAccuracy computes accuracy separately per group, where group[i]
// names the group of sample i (e.g. the customer account). It returns a map
// group -> accuracy and a map group -> sample count.
func GroupedAccuracy(preds, truth []int, group []string) (map[string]float64, map[string]int) {
	acc := map[string]float64{}
	n := map[string]int{}
	correct := map[string]int{}
	for i := range preds {
		g := group[i]
		n[g]++
		if preds[i] == truth[i] {
			correct[g]++
		}
	}
	for g, total := range n {
		acc[g] = float64(correct[g]) / float64(total)
	}
	return acc, n
}

// ConfusionMatrix returns an numClasses x numClasses matrix where entry
// [t][p] counts samples of true class t predicted as p.
func ConfusionMatrix(preds, truth []int, numClasses int) [][]int {
	m := make([][]int, numClasses)
	for i := range m {
		m[i] = make([]int, numClasses)
	}
	for i := range preds {
		t, p := truth[i], preds[i]
		if t >= 0 && t < numClasses && p >= 0 && p < numClasses {
			m[t][p]++
		}
	}
	return m
}

// ShouldPromote is the old-vs-new deployment gate used by the drift
// controller: a retrained model replaces the deployed one only when its
// holdout accuracy reaches the incumbent's plus minGain, with the
// incumbent's score discounted by one standard error of the holdout estimate
// (sqrt(acc*(1-acc)/n)) so a statistically equivalent challenger is not
// rejected for sampling noise on a small holdout. n is the holdout size
// (n <= 0 skips the discount). A challenger worse by more than that noise
// margin is never promoted.
func ShouldPromote(oldAcc, newAcc float64, n int, minGain float64) bool {
	bar := oldAcc - stdErr(oldAcc, n)
	if bar < 0 {
		bar = 0
	}
	return newAcc >= bar+minGain
}

// stdErr returns the standard error of an accuracy estimate over n samples.
func stdErr(acc float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	v := acc * (1 - acc) / float64(n)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// MajorityBaseline returns the accuracy achieved by always predicting the
// most frequent class — the floor any learned labeler must beat.
func MajorityBaseline(y []int, numClasses int) float64 {
	if len(y) == 0 {
		return 0
	}
	counts := make([]int, numClasses)
	for _, c := range y {
		if c >= 0 && c < numClasses {
			counts[c]++
		}
	}
	best := 0
	for _, n := range counts {
		if n > best {
			best = n
		}
	}
	return float64(best) / float64(len(y))
}
