//go:build !race

package doc2vec

// In normal builds the Hogwild update path is lock-free; see race.go for the
// race-detector build's serialized counterpart and the rationale.

func hogwildLock()   {}
func hogwildUnlock() {}
