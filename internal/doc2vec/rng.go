package doc2vec

// xorshift is a tiny inline RNG (xorshift64 with a splitmix64-finalized
// seed) used by the zero-alloc inference path: Infer previously allocated a
// rand.Rand + source per query, which dominated its allocation profile. It
// implements vocab.RNG. Not cryptographic; statistical quality is ample for
// negative sampling and scratch-vector initialization.
type xorshift struct{ s uint64 }

// newXorshift returns a generator whose stream is a deterministic function
// of seed (splitmix64 finalizer, so nearby seeds give unrelated streams).
func newXorshift(seed int64) xorshift {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15 // xorshift has a fixed point at 0
	}
	return xorshift{s: z}
}

func (r *xorshift) next() uint64 {
	s := r.s
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	r.s = s
	return s
}

// Float64 returns a uniform float64 in [0, 1).
func (r *xorshift) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). The modulo bias is below 2^-40 for
// the table sizes used here, which is immaterial for negative sampling.
func (r *xorshift) Intn(n int) int {
	return int(r.next() % uint64(n))
}
