package doc2vec

import (
	"bytes"
	"math"
	"testing"

	"querc/internal/vec"
)

func corpus() [][]string {
	var docs [][]string
	for i := 0; i < 40; i++ {
		docs = append(docs, []string{"select", "a", "from", "t", "where", "x", "=", "0"})
		docs = append(docs, []string{"insert", "into", "u", "values", "y", "z"})
	}
	return docs
}

func cfg(mode Mode) Config {
	c := DefaultConfig()
	c.Dim = 16
	c.Epochs = 6
	c.MinCount = 1
	c.Subsample = 0
	c.Mode = mode
	return c
}

func TestTrainBothModes(t *testing.T) {
	for _, mode := range []Mode{PVDM, PVDBOW} {
		m, err := Train(corpus(), cfg(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if m.Dim() != 16 {
			t.Fatalf("%v: dim %d", mode, m.Dim())
		}
		if m.Docs.Rows != len(corpus()) {
			t.Fatalf("%v: %d doc vectors", mode, m.Docs.Rows)
		}
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(nil, cfg(PVDM)); err == nil {
		t.Fatal("empty corpus must fail")
	}
}

func TestMinCountTooHigh(t *testing.T) {
	c := cfg(PVDM)
	c.MinCount = 1000
	if _, err := Train(corpus(), c); err == nil {
		t.Fatal("empty vocabulary must fail")
	}
}

func TestDocVectorsSeparateTemplates(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	// Docs alternate select/insert; compare within vs across templates.
	simSame := vec.Cosine(m.DocVector(0), m.DocVector(2))
	simDiff := vec.Cosine(m.DocVector(0), m.DocVector(1))
	if !(simSame > simDiff) {
		t.Fatalf("same-template similarity %.3f should exceed cross %.3f", simSame, simDiff)
	}
}

func TestInferDeterministicAndDiscriminative(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	sel := []string{"select", "a", "from", "t", "where", "x", "=", "0"}
	ins := []string{"insert", "into", "u", "values", "y", "z"}
	v1, v2 := m.Infer(sel), m.Infer(sel)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("inference must be deterministic per input")
		}
	}
	simSame := vec.Cosine(m.Infer(sel), vec.Vector(m.Docs.Row(0)))
	simDiff := vec.Cosine(m.Infer(ins), vec.Vector(m.Docs.Row(0)))
	if !(simSame > simDiff) {
		t.Fatalf("inferred select vector should sit near select docs: %.3f vs %.3f", simSame, simDiff)
	}
}

func TestInferHandlesOOV(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	v := m.Infer([]string{"completely", "novel", "tokens"})
	if len(v) != m.Dim() {
		t.Fatalf("OOV inference dim: %d", len(v))
	}
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("OOV inference produced non-finite values")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDBOW))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []string{"select", "a", "from", "t"}
	v1, v2 := m.Infer(in), m2.Infer(in)
	for i := range v1 {
		if math.Abs(v1[i]-v2[i]) > 1e-12 {
			t.Fatal("loaded model infers differently")
		}
	}
	if m2.Docs.Rows != m.Docs.Rows {
		t.Fatal("doc vectors lost in round trip")
	}
}

func TestSameSeedSameModel(t *testing.T) {
	m1, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.WordIn.Data {
		if m1.WordIn.Data[i] != m2.WordIn.Data[i] {
			t.Fatal("same seed must reproduce identical weights")
		}
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	m, err := Train(corpus(), Config{Mode: PVDM, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.Dim <= 0 || m.Cfg.Epochs <= 0 || m.Cfg.Window <= 0 {
		t.Fatalf("defaults not filled: %+v", m.Cfg)
	}
}

func TestModeString(t *testing.T) {
	if PVDM.String() != "pv-dm" || PVDBOW.String() != "pv-dbow" {
		t.Fatal("mode names wrong")
	}
}

func TestInferBatchMatchesInferAndDedupes(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	docs := [][]string{
		{"select", "a", "from", "t"},
		{"insert", "into", "u"},
		{"select", "a", "from", "t"}, // duplicate of docs[0]
		{"select", "b"},
	}
	batch := m.InferBatch(docs)
	if len(batch) != len(docs) {
		t.Fatalf("batch length: %d", len(batch))
	}
	for i, doc := range docs {
		want := m.Infer(doc)
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("batch[%d] differs from Infer at dim %d", i, j)
			}
		}
	}
	// Duplicated inputs share one inference (and its backing vector).
	if &batch[0][0] != &batch[2][0] {
		t.Fatal("duplicate sequences must share the first occurrence's vector")
	}
	if got := m.InferBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch: %d", len(got))
	}
}
