package doc2vec

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"querc/internal/vec"
)

// update regenerates testdata goldens: go test ./internal/doc2vec -update
var update = flag.Bool("update", false, "rewrite testdata golden files")

func corpus() [][]string {
	var docs [][]string
	for i := 0; i < 40; i++ {
		docs = append(docs, []string{"select", "a", "from", "t", "where", "x", "=", "0"})
		docs = append(docs, []string{"insert", "into", "u", "values", "y", "z"})
	}
	return docs
}

// cfg pins Workers to 1: most tests assert deterministic outputs, which is
// exactly the Workers=1 contract. Parallel training is exercised by the
// TestTrainHogwild* tests.
func cfg(mode Mode) Config {
	c := DefaultConfig()
	c.Dim = 16
	c.Epochs = 6
	c.MinCount = 1
	c.Subsample = 0
	c.Mode = mode
	c.Workers = 1
	return c
}

func TestTrainBothModes(t *testing.T) {
	for _, mode := range []Mode{PVDM, PVDBOW} {
		m, err := Train(corpus(), cfg(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if m.Dim() != 16 {
			t.Fatalf("%v: dim %d", mode, m.Dim())
		}
		if m.Docs.Rows != len(corpus()) {
			t.Fatalf("%v: %d doc vectors", mode, m.Docs.Rows)
		}
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(nil, cfg(PVDM)); err == nil {
		t.Fatal("empty corpus must fail")
	}
}

func TestMinCountTooHigh(t *testing.T) {
	c := cfg(PVDM)
	c.MinCount = 1000
	if _, err := Train(corpus(), c); err == nil {
		t.Fatal("empty vocabulary must fail")
	}
}

func TestDocVectorsSeparateTemplates(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	// Docs alternate select/insert; compare within vs across templates.
	simSame := vec.Cosine(m.DocVector(0), m.DocVector(2))
	simDiff := vec.Cosine(m.DocVector(0), m.DocVector(1))
	if !(simSame > simDiff) {
		t.Fatalf("same-template similarity %.3f should exceed cross %.3f", simSame, simDiff)
	}
}

func TestInferDeterministicAndDiscriminative(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	sel := []string{"select", "a", "from", "t", "where", "x", "=", "0"}
	ins := []string{"insert", "into", "u", "values", "y", "z"}
	v1, v2 := m.Infer(sel), m.Infer(sel)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("inference must be deterministic per input")
		}
	}
	simSame := vec.Cosine(m.Infer(sel), vec.Vector(m.Docs.Row(0)))
	simDiff := vec.Cosine(m.Infer(ins), vec.Vector(m.Docs.Row(0)))
	if !(simSame > simDiff) {
		t.Fatalf("inferred select vector should sit near select docs: %.3f vs %.3f", simSame, simDiff)
	}
}

func TestInferHandlesOOV(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	v := m.Infer([]string{"completely", "novel", "tokens"})
	if len(v) != m.Dim() {
		t.Fatalf("OOV inference dim: %d", len(v))
	}
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("OOV inference produced non-finite values")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDBOW))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []string{"select", "a", "from", "t"}
	v1, v2 := m.Infer(in), m2.Infer(in)
	for i := range v1 {
		if math.Abs(v1[i]-v2[i]) > 1e-12 {
			t.Fatal("loaded model infers differently")
		}
	}
	if m2.Docs.Rows != m.Docs.Rows {
		t.Fatal("doc vectors lost in round trip")
	}
}

func TestSameSeedSameModel(t *testing.T) {
	m1, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.WordIn.Data {
		if m1.WordIn.Data[i] != m2.WordIn.Data[i] {
			t.Fatal("same seed must reproduce identical weights")
		}
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	m, err := Train(corpus(), Config{Mode: PVDM, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.Dim <= 0 || m.Cfg.Epochs <= 0 || m.Cfg.Window <= 0 {
		t.Fatalf("defaults not filled: %+v", m.Cfg)
	}
}

func TestModeString(t *testing.T) {
	if PVDM.String() != "pv-dm" || PVDBOW.String() != "pv-dbow" {
		t.Fatal("mode names wrong")
	}
}

// TestTrainWorkers1Golden pins the Workers=1 training output bit-for-bit:
// the deterministic serial schedule is the reference the Hogwild plane is
// measured against, and any change to the kernels or the schedule must be a
// deliberate one (regenerate with `go test ./internal/doc2vec -update`).
func TestTrainWorkers1Golden(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]float64{
		"wordIn":  m.WordIn.Data,
		"wordOut": m.WordOut.Data,
		"docs":    m.Docs.Data,
	}
	path := filepath.Join("testdata", "train_workers1_golden.json")
	if *update {
		blob, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want map[string][]float64
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		g := got[name]
		if len(g) != len(w) {
			t.Fatalf("%s: length %d want %d", name, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s[%d]: %v differs from golden %v — the Workers=1 schedule is no longer byte-identical", name, i, g[i], w[i])
			}
		}
	}
}

// TestTrainHogwildParallel exercises the lock-free multi-worker schedule
// (serialized under -race by the build-tagged mutex): the model must come out
// finite and as discriminative as the serial one.
func TestTrainHogwildParallel(t *testing.T) {
	c := cfg(PVDM)
	c.Workers = 4
	m, err := Train(corpus(), c)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range m.WordIn.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("Hogwild training produced non-finite weights")
		}
	}
	// Same quality bar as the serial TestDocVectorsSeparateTemplates.
	simSame := vec.Cosine(m.DocVector(0), m.DocVector(2))
	simDiff := vec.Cosine(m.DocVector(0), m.DocVector(1))
	if !(simSame > simDiff) {
		t.Fatalf("parallel model lost template separation: %.3f vs %.3f", simSame, simDiff)
	}
	// Inference from a Hogwild-trained model stays deterministic per input.
	sel := []string{"select", "a", "from", "t"}
	v1, v2 := m.Infer(sel), m.Infer(sel)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("inference must stay deterministic after parallel training")
		}
	}
}

// TestTrainHogwildMoreWorkersThanDocs clamps the pool to the corpus size.
func TestTrainHogwildMoreWorkersThanDocs(t *testing.T) {
	c := cfg(PVDBOW)
	c.Workers = 64
	if _, err := Train(corpus()[:3], c); err != nil {
		t.Fatal(err)
	}
}

// TestInferAllocs pins the steady-state allocation profile of Infer: the
// returned document vector plus pool jitter, nothing per-epoch.
func TestInferAllocs(t *testing.T) {
	if vec.RaceEnabled {
		t.Skip("allocation profile differs under the race detector")
	}
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	tokens := []string{"select", "a", "from", "t", "where", "x", "=", "0"}
	for i := 0; i < 4; i++ {
		m.Infer(tokens) // warm the scratch pool
	}
	if allocs := testing.AllocsPerRun(200, func() { m.Infer(tokens) }); allocs > 2 {
		t.Fatalf("Infer allocates %.1f per op, want <= 2 (doc vector + pool jitter)", allocs)
	}
}

// TestInferBatchParallelManyDocs drives the batch fan-out with enough
// distinct docs to engage the pool; run with -race this covers the
// concurrent-inference path.
func TestInferBatchParallelManyDocs(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"select", "a", "from", "t", "where", "x", "insert", "into", "u", "values", "y", "z"}
	docs := make([][]string, 300)
	for i := range docs {
		docs[i] = []string{words[i%len(words)], words[(i/2)%len(words)], words[(i/3)%len(words)]}
	}
	batch := m.InferBatch(docs)
	for i, doc := range docs {
		want := m.Infer(doc)
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("batch[%d] differs from serial Infer at dim %d", i, j)
			}
		}
	}
}

func TestInferBatchMatchesInferAndDedupes(t *testing.T) {
	m, err := Train(corpus(), cfg(PVDM))
	if err != nil {
		t.Fatal(err)
	}
	docs := [][]string{
		{"select", "a", "from", "t"},
		{"insert", "into", "u"},
		{"select", "a", "from", "t"}, // duplicate of docs[0]
		{"select", "b"},
	}
	batch := m.InferBatch(docs)
	if len(batch) != len(docs) {
		t.Fatalf("batch length: %d", len(batch))
	}
	for i, doc := range docs {
		want := m.Infer(doc)
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("batch[%d] differs from Infer at dim %d", i, j)
			}
		}
	}
	// Duplicated inputs share one inference (and its backing vector).
	if &batch[0][0] != &batch[2][0] {
		t.Fatal("duplicate sequences must share the first occurrence's vector")
	}
	if got := m.InferBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch: %d", len(got))
	}
}
