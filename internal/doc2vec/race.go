//go:build race

package doc2vec

import "sync"

// Under the race detector, Hogwild's by-design lock-free updates to the
// shared word matrices would (correctly) be reported as data races. Those
// races are the algorithm — sparse, small-stepped SGD updates whose
// collisions behave as extra stochastic noise (see DESIGN.md "Performance
// model") — so the race build serializes trainDoc behind a global mutex.
// -race then verifies the surrounding orchestration (sharding, per-worker
// RNG streams, the atomic step counter, goroutine lifecycle) instead of
// flagging the documented races; normal builds pay no synchronization.
var hogwildMu sync.Mutex

func hogwildLock()   { hogwildMu.Lock() }
func hogwildUnlock() { hogwildMu.Unlock() }
