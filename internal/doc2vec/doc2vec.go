// Package doc2vec implements the paragraph-vector embedding models of Le &
// Mikolov ("Distributed Representations of Sentences and Documents"), the
// first of the two embedders evaluated in the paper (§3, "context prediction
// models").
//
// Both training modes are provided:
//
//   - PV-DM: the document vector is averaged with a fixed context window of
//     word vectors to predict the center word.
//   - PV-DBOW: the document vector alone predicts each word of the document.
//
// Training uses negative sampling with the unigram^0.75 distribution, a
// linearly decaying learning rate, and optional frequent-token subsampling —
// the same hyper-parameter surface as the reference implementation. Unseen
// queries are embedded by inference: the word matrices are frozen and a fresh
// document vector is fitted by gradient steps.
//
// Training parallelizes Hogwild-style (Recht et al.): Config.Workers
// goroutines shard the corpus and update the shared word matrices without
// locks, the same scheme as the reference word2vec implementation. Workers=1
// keeps the fully deterministic serial schedule (same seed + corpus => same
// model, bit for bit). Inference is allocation-light — per-model pooled
// scratch, an inline xorshift RNG seeded from the document hash — and
// InferBatch dedupes identical token sequences before fanning the distinct
// ones across a bounded worker pool.
package doc2vec

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"querc/internal/vec"
	"querc/internal/vocab"
)

// Mode selects the training objective.
type Mode int

// Training modes.
const (
	PVDM Mode = iota
	PVDBOW
)

func (m Mode) String() string {
	if m == PVDBOW {
		return "pv-dbow"
	}
	return "pv-dm"
}

// Config holds the hyper-parameters of a Doc2Vec model.
type Config struct {
	Dim         int     // embedding dimensionality
	Window      int     // context window radius (PV-DM)
	Negative    int     // negative samples per positive
	Epochs      int     // full passes over the corpus
	Alpha       float64 // initial learning rate
	MinAlpha    float64 // final learning rate
	MinCount    int64   // vocabulary frequency cutoff
	Subsample   float64 // frequent-token subsampling threshold (0 disables)
	Mode        Mode
	InferEpochs int   // gradient passes used by Infer
	Seed        int64 // RNG seed; same seed + corpus => same model (Workers=1)
	// Workers is the number of Hogwild training goroutines. 0 uses
	// GOMAXPROCS. 1 runs the serial schedule, whose output is byte-identical
	// across runs for a fixed (Seed, corpus); with Workers > 1 the lock-free
	// updates make training a stochastic function of scheduling (the races
	// are part of the algorithm — see DESIGN.md "Performance model").
	Workers int
}

// DefaultConfig returns the hyper-parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Dim:         64,
		Window:      5,
		Negative:    5,
		Epochs:      10,
		Alpha:       0.05,
		MinAlpha:    0.0001,
		MinCount:    2,
		Subsample:   1e-4,
		Mode:        PVDM,
		InferEpochs: 20,
		Seed:        1,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Dim <= 0 {
		c.Dim = d.Dim
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Negative <= 0 {
		c.Negative = d.Negative
	}
	if c.Epochs <= 0 {
		c.Epochs = d.Epochs
	}
	if c.Alpha <= 0 {
		c.Alpha = d.Alpha
	}
	if c.MinAlpha <= 0 {
		c.MinAlpha = d.MinAlpha
	}
	if c.MinCount <= 0 {
		c.MinCount = d.MinCount
	}
	if c.InferEpochs <= 0 {
		c.InferEpochs = d.InferEpochs
	}
}

// Model is a trained Doc2Vec embedder.
type Model struct {
	Cfg     Config
	Vocab   *vocab.Vocabulary
	WordIn  *vec.Matrix // input word vectors, Size x Dim
	WordOut *vec.Matrix // output word vectors, Size x Dim
	Docs    *vec.Matrix // training document vectors, NumDocs x Dim

	// inferPool recycles per-inference scratch (token-ID buffer plus the two
	// Dim-length gradient vectors), so concurrent Infer calls allocate only
	// their returned document vector.
	inferPool sync.Pool
}

// inferScratch is the pooled per-call state of Infer.
type inferScratch struct {
	ids       []int
	ctx, grad vec.Vector
}

// Train fits a Doc2Vec model on corpus, a slice of token sequences.
func Train(corpus [][]string, cfg Config) (*Model, error) {
	cfg.fillDefaults()
	if len(corpus) == 0 {
		return nil, fmt.Errorf("doc2vec: empty corpus")
	}
	b := vocab.NewBuilder()
	for _, doc := range corpus {
		b.Add(doc)
	}
	v := b.Build(cfg.MinCount)
	if v.Size() <= vocab.NumReserved {
		return nil, fmt.Errorf("doc2vec: vocabulary empty after min-count %d", cfg.MinCount)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Cfg:     cfg,
		Vocab:   v,
		WordIn:  vec.NewRandomMatrix(rng, v.Size(), cfg.Dim, 0.5/float64(cfg.Dim)),
		WordOut: vec.NewMatrix(v.Size(), cfg.Dim),
		Docs:    vec.NewRandomMatrix(rng, len(corpus), cfg.Dim, 0.5/float64(cfg.Dim)),
	}

	encoded := make([][]int, len(corpus))
	for i, doc := range corpus {
		encoded[i] = v.Encode(doc)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(encoded) {
		workers = len(encoded)
	}
	if workers <= 1 {
		// Serial schedule: deterministic for a fixed (Seed, corpus). The
		// Workers=1 output is pinned by TestTrainWorkers1Golden.
		totalSteps := cfg.Epochs * len(corpus)
		step := 0
		ctx := vec.New(cfg.Dim)
		grad := vec.New(cfg.Dim)
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for docID, ids := range encoded {
				alpha := cfg.Alpha - (cfg.Alpha-cfg.MinAlpha)*float64(step)/float64(totalSteps)
				step++
				sampled := v.Subsample(rng, ids, cfg.Subsample)
				m.trainDoc(rng, m.Docs.Row(docID), sampled, alpha, true, ctx, grad)
			}
		}
	} else {
		m.trainHogwild(encoded, workers)
	}
	return m, nil
}

// trainHogwild runs Epochs passes over the corpus across workers goroutines.
// Each worker owns a fixed strided shard of documents (docID ≡ worker mod
// workers) — strided rather than contiguous so every worker sweeps a
// representative cross-section of the corpus per epoch even when the
// scheduler runs goroutines in long slices, and document vectors are never
// contended. Each worker has its own RNG stream seeded from (Seed, worker);
// the shared word matrices are updated lock-free, Hogwild-style — the
// sparse, small-stepped updates make the races part of the stochastic noise
// rather than a correctness hazard. The learning rate decays on a shared
// atomic step counter, matching the serial schedule's global progress. Under
// the race detector the updates are serialized by a build-tagged mutex
// (race.go) so -race verifies the orchestration rather than the by-design
// races.
func (m *Model) trainHogwild(encoded [][]int, workers int) {
	cfg := m.Cfg
	totalSteps := cfg.Epochs * len(encoded)
	var step atomic.Int64
	rngs := make([]*rand.Rand, workers)
	ctxs := make([]vec.Vector, workers)
	grads := make([]vec.Vector, workers)
	for w := range rngs {
		rngs[w] = rand.New(rand.NewSource(workerSeed(cfg.Seed, w)))
		ctxs[w] = vec.New(cfg.Dim)
		grads[w] = vec.New(cfg.Dim)
	}
	// The barrier between epochs matters: without it a worker can race ahead
	// through several of its own epochs while another has barely started,
	// bunching each document's updates into a narrow alpha window instead of
	// spreading them across the whole decay schedule (visible as a several-
	// point CV-accuracy loss whenever scheduling is coarse).
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rngs[w]
				for docID := w; docID < len(encoded); docID += workers {
					s := step.Add(1) - 1
					alpha := cfg.Alpha - (cfg.Alpha-cfg.MinAlpha)*float64(s)/float64(totalSteps)
					sampled := m.Vocab.Subsample(rng, encoded[docID], cfg.Subsample)
					hogwildLock()
					// Hogwild!: workers update the shared word/doc matrices
					// with no per-row locking; sparse gradients make the
					// collisions statistically harmless, and the race
					// detector builds serialize via hogwildLock (race.go).
					//querc:allow-race Hogwild! lock-free SGD, see above
					m.trainDoc(rng, m.Docs.Row(docID), sampled, alpha, true, ctxs[w], grads[w])
					hogwildUnlock()
				}
			}(w)
		}
		wg.Wait()
	}
}

// workerSeed derives an independent RNG stream seed for one Hogwild worker
// from the model seed (splitmix64 finalizer over the pair).
func workerSeed(seed int64, worker int) int64 {
	z := uint64(seed) + uint64(worker+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// trainDoc runs one pass of the configured objective over one document,
// updating docVec and (when updateWords) the word matrices. ctx and grad are
// scratch vectors of length Dim.
func (m *Model) trainDoc(rng vocab.RNG, docVec vec.Vector, ids []int, alpha float64, updateWords bool, ctx, grad vec.Vector) {
	if len(ids) == 0 {
		return
	}
	switch m.Cfg.Mode {
	case PVDBOW:
		for _, target := range ids {
			if target < vocab.NumReserved {
				continue
			}
			m.negSampleStep(rng, docVec, target, alpha, updateWords, grad)
		}
	default: // PVDM
		w := m.Cfg.Window
		for pos, target := range ids {
			if target < vocab.NumReserved {
				continue
			}
			lo, hi := pos-w, pos+w
			if lo < 0 {
				lo = 0
			}
			if hi >= len(ids) {
				hi = len(ids) - 1
			}
			// ctx = mean(doc vector, window word vectors)
			copy(ctx, docVec)
			n := 1
			for i := lo; i <= hi; i++ {
				if i == pos || ids[i] < vocab.NumReserved {
					continue
				}
				ctx.Add(m.WordIn.Row(ids[i]))
				n++
			}
			ctx.Scale(1 / float64(n))

			grad.Zero()
			m.negSampleInto(rng, ctx, target, alpha, updateWords, grad)

			// Distribute the context gradient to the doc vector and the
			// participating word vectors (standard PV-DM update).
			docVec.Add(grad)
			if updateWords {
				for i := lo; i <= hi; i++ {
					if i == pos || ids[i] < vocab.NumReserved {
						continue
					}
					m.WordIn.Row(ids[i]).Add(grad)
				}
			}
		}
	}
}

// negSampleStep applies one negative-sampling update predicting target from
// input, writing the input-side gradient straight into input.
func (m *Model) negSampleStep(rng vocab.RNG, input vec.Vector, target int, alpha float64, updateWords bool, grad vec.Vector) {
	grad.Zero()
	m.negSampleInto(rng, input, target, alpha, updateWords, grad)
	input.Add(grad)
}

// negSampleInto accumulates the input-side gradient of one positive +
// Negative sampled updates into grad, updating WordOut rows when updateWords.
// It runs on the fused vec kernels: one pass for the activation
// (DotSigmoid), one pass for the two-sided update (AddScaledBoth).
func (m *Model) negSampleInto(rng vocab.RNG, input vec.Vector, target int, alpha float64, updateWords bool, grad vec.Vector) {
	for k := 0; k <= m.Cfg.Negative; k++ {
		var label float64
		var out vec.Vector
		if k == 0 {
			label = 1
			out = m.WordOut.Row(target)
		} else {
			neg := m.Vocab.SampleNegative(rng, target)
			if neg == target || neg < vocab.NumReserved {
				continue
			}
			label = 0
			out = m.WordOut.Row(neg)
		}
		f := vec.DotSigmoid(input, out)
		g := alpha * (label - f)
		if updateWords {
			vec.AddScaledBoth(grad, out, input, g)
		} else {
			grad.AddScaled(g, out)
		}
	}
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.Cfg.Dim }

// DocVector returns the trained vector of corpus document i. The returned
// vector aliases the model's storage — callers must treat it as immutable
// (clone before mutating).
func (m *Model) DocVector(i int) vec.Vector { return m.Docs.Row(i) }

// Infer embeds an unseen token sequence by fitting a fresh document vector
// against the frozen word matrices. The RNG is an inline xorshift generator
// seeded from the model seed and a hash of the tokens, so inference is
// deterministic per input, and all scratch state beyond the returned vector
// comes from a per-model pool — one allocation per call on the steady state.
// Infer is safe for concurrent use (the word matrices are read-only here).
//
//querc:hotpath
func (m *Model) Infer(tokens []string) vec.Vector {
	sc, _ := m.inferPool.Get().(*inferScratch)
	if sc == nil {
		sc = &inferScratch{ctx: vec.New(m.Cfg.Dim), grad: vec.New(m.Cfg.Dim)}
	}
	sc.ids = m.Vocab.EncodeInto(sc.ids[:0], tokens)
	ids := sc.ids
	var h int64 = 1469598103934665603
	for _, id := range ids {
		h = (h ^ int64(id)) * 1099511628211
	}
	rng := newXorshift(m.Cfg.Seed ^ h)
	scale := 0.5 / float64(m.Cfg.Dim)
	docVec := make(vec.Vector, m.Cfg.Dim)
	for i := range docVec {
		docVec[i] = (rng.Float64()*2 - 1) * scale
	}
	alpha0 := m.Cfg.Alpha
	for e := 0; e < m.Cfg.InferEpochs; e++ {
		alpha := alpha0 - (alpha0-m.Cfg.MinAlpha)*float64(e)/float64(m.Cfg.InferEpochs)
		m.trainDoc(&rng, docVec, ids, alpha, false, sc.ctx, sc.grad)
	}
	m.inferPool.Put(sc)
	return docVec
}

// InferBatch embeds a batch of token sequences, running inference once per
// distinct sequence: Infer is deterministic per input, so duplicates — which
// dominate production workloads — share the first occurrence's vector. The
// distinct sequences fan out across a bounded worker pool (inference is
// read-only on the model). The returned slice is index-aligned with docs;
// aliased vectors must be treated as immutable by callers.
func (m *Model) InferBatch(docs [][]string) []vec.Vector {
	out := make([]vec.Vector, len(docs))
	if len(docs) == 0 {
		return out
	}
	repOf := vocab.ForEachRep(docs, runtime.GOMAXPROCS(0), func(i int) {
		out[i] = m.Infer(docs[i])
	})
	for i, r := range repOf {
		out[i] = out[r]
	}
	return out
}

// modelGob is the serialized form of Model.
type modelGob struct {
	Cfg             Config
	Words           []string
	Counts          []int64
	Total           int64
	WordIn, WordOut []float64
	Docs            []float64
	NumDocs         int
}

// Save writes the model in gob format.
func (m *Model) Save(w io.Writer) error {
	words := make([]string, m.Vocab.Size())
	counts := make([]int64, m.Vocab.Size())
	for i := 0; i < m.Vocab.Size(); i++ {
		words[i] = m.Vocab.Word(i)
		counts[i] = m.Vocab.Count(i)
	}
	g := modelGob{
		Cfg:     m.Cfg,
		Words:   words,
		Counts:  counts,
		Total:   m.Vocab.TotalTokens(),
		WordIn:  m.WordIn.Data,
		WordOut: m.WordOut.Data,
		Docs:    m.Docs.Data,
		NumDocs: m.Docs.Rows,
	}
	return gob.NewEncoder(w).Encode(&g)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var g modelGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("doc2vec: load: %w", err)
	}
	v := vocab.Restore(g.Words, g.Counts, g.Total)
	size := len(g.Words)
	m := &Model{
		Cfg:     g.Cfg,
		Vocab:   v,
		WordIn:  &vec.Matrix{Rows: size, Cols: g.Cfg.Dim, Data: g.WordIn},
		WordOut: &vec.Matrix{Rows: size, Cols: g.Cfg.Dim, Data: g.WordOut},
		Docs:    &vec.Matrix{Rows: g.NumDocs, Cols: g.Cfg.Dim, Data: g.Docs},
	}
	return m, nil
}
