// Package doc2vec implements the paragraph-vector embedding models of Le &
// Mikolov ("Distributed Representations of Sentences and Documents"), the
// first of the two embedders evaluated in the paper (§3, "context prediction
// models").
//
// Both training modes are provided:
//
//   - PV-DM: the document vector is averaged with a fixed context window of
//     word vectors to predict the center word.
//   - PV-DBOW: the document vector alone predicts each word of the document.
//
// Training uses negative sampling with the unigram^0.75 distribution, a
// linearly decaying learning rate, and optional frequent-token subsampling —
// the same hyper-parameter surface as the reference implementation. Unseen
// queries are embedded by inference: the word matrices are frozen and a fresh
// document vector is fitted by gradient steps.
package doc2vec

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"querc/internal/vec"
	"querc/internal/vocab"
)

// Mode selects the training objective.
type Mode int

// Training modes.
const (
	PVDM Mode = iota
	PVDBOW
)

func (m Mode) String() string {
	if m == PVDBOW {
		return "pv-dbow"
	}
	return "pv-dm"
}

// Config holds the hyper-parameters of a Doc2Vec model.
type Config struct {
	Dim         int     // embedding dimensionality
	Window      int     // context window radius (PV-DM)
	Negative    int     // negative samples per positive
	Epochs      int     // full passes over the corpus
	Alpha       float64 // initial learning rate
	MinAlpha    float64 // final learning rate
	MinCount    int64   // vocabulary frequency cutoff
	Subsample   float64 // frequent-token subsampling threshold (0 disables)
	Mode        Mode
	InferEpochs int   // gradient passes used by Infer
	Seed        int64 // RNG seed; same seed + corpus => same model
}

// DefaultConfig returns the hyper-parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Dim:         64,
		Window:      5,
		Negative:    5,
		Epochs:      10,
		Alpha:       0.05,
		MinAlpha:    0.0001,
		MinCount:    2,
		Subsample:   1e-4,
		Mode:        PVDM,
		InferEpochs: 20,
		Seed:        1,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Dim <= 0 {
		c.Dim = d.Dim
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Negative <= 0 {
		c.Negative = d.Negative
	}
	if c.Epochs <= 0 {
		c.Epochs = d.Epochs
	}
	if c.Alpha <= 0 {
		c.Alpha = d.Alpha
	}
	if c.MinAlpha <= 0 {
		c.MinAlpha = d.MinAlpha
	}
	if c.MinCount <= 0 {
		c.MinCount = d.MinCount
	}
	if c.InferEpochs <= 0 {
		c.InferEpochs = d.InferEpochs
	}
}

// Model is a trained Doc2Vec embedder.
type Model struct {
	Cfg     Config
	Vocab   *vocab.Vocabulary
	WordIn  *vec.Matrix // input word vectors, Size x Dim
	WordOut *vec.Matrix // output word vectors, Size x Dim
	Docs    *vec.Matrix // training document vectors, NumDocs x Dim
}

// Train fits a Doc2Vec model on corpus, a slice of token sequences.
func Train(corpus [][]string, cfg Config) (*Model, error) {
	cfg.fillDefaults()
	if len(corpus) == 0 {
		return nil, fmt.Errorf("doc2vec: empty corpus")
	}
	b := vocab.NewBuilder()
	for _, doc := range corpus {
		b.Add(doc)
	}
	v := b.Build(cfg.MinCount)
	if v.Size() <= vocab.NumReserved {
		return nil, fmt.Errorf("doc2vec: vocabulary empty after min-count %d", cfg.MinCount)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Cfg:     cfg,
		Vocab:   v,
		WordIn:  vec.NewRandomMatrix(rng, v.Size(), cfg.Dim, 0.5/float64(cfg.Dim)),
		WordOut: vec.NewMatrix(v.Size(), cfg.Dim),
		Docs:    vec.NewRandomMatrix(rng, len(corpus), cfg.Dim, 0.5/float64(cfg.Dim)),
	}

	encoded := make([][]int, len(corpus))
	for i, doc := range corpus {
		encoded[i] = v.Encode(doc)
	}

	totalSteps := cfg.Epochs * len(corpus)
	step := 0
	ctx := vec.New(cfg.Dim)
	grad := vec.New(cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for docID, ids := range encoded {
			alpha := cfg.Alpha - (cfg.Alpha-cfg.MinAlpha)*float64(step)/float64(totalSteps)
			step++
			sampled := v.Subsample(rng, ids, cfg.Subsample)
			m.trainDoc(rng, m.Docs.Row(docID), sampled, alpha, true, ctx, grad)
		}
	}
	return m, nil
}

// trainDoc runs one pass of the configured objective over one document,
// updating docVec and (when updateWords) the word matrices. ctx and grad are
// scratch vectors of length Dim.
func (m *Model) trainDoc(rng *rand.Rand, docVec vec.Vector, ids []int, alpha float64, updateWords bool, ctx, grad vec.Vector) {
	if len(ids) == 0 {
		return
	}
	switch m.Cfg.Mode {
	case PVDBOW:
		for _, target := range ids {
			if target < vocab.NumReserved {
				continue
			}
			m.negSampleStep(rng, docVec, target, alpha, updateWords, grad)
		}
	default: // PVDM
		w := m.Cfg.Window
		for pos, target := range ids {
			if target < vocab.NumReserved {
				continue
			}
			lo, hi := pos-w, pos+w
			if lo < 0 {
				lo = 0
			}
			if hi >= len(ids) {
				hi = len(ids) - 1
			}
			// ctx = mean(doc vector, window word vectors)
			copy(ctx, docVec)
			n := 1
			for i := lo; i <= hi; i++ {
				if i == pos || ids[i] < vocab.NumReserved {
					continue
				}
				ctx.Add(m.WordIn.Row(ids[i]))
				n++
			}
			ctx.Scale(1 / float64(n))

			grad.Zero()
			m.negSampleInto(rng, ctx, target, alpha, updateWords, grad)

			// Distribute the context gradient to the doc vector and the
			// participating word vectors (standard PV-DM update).
			docVec.Add(grad)
			if updateWords {
				for i := lo; i <= hi; i++ {
					if i == pos || ids[i] < vocab.NumReserved {
						continue
					}
					m.WordIn.Row(ids[i]).Add(grad)
				}
			}
		}
	}
}

// negSampleStep applies one negative-sampling update predicting target from
// input, writing the input-side gradient straight into input.
func (m *Model) negSampleStep(rng *rand.Rand, input vec.Vector, target int, alpha float64, updateWords bool, grad vec.Vector) {
	grad.Zero()
	m.negSampleInto(rng, input, target, alpha, updateWords, grad)
	input.Add(grad)
}

// negSampleInto accumulates the input-side gradient of one positive +
// Negative sampled updates into grad, updating WordOut rows when updateWords.
func (m *Model) negSampleInto(rng *rand.Rand, input vec.Vector, target int, alpha float64, updateWords bool, grad vec.Vector) {
	for k := 0; k <= m.Cfg.Negative; k++ {
		var label float64
		var out vec.Vector
		if k == 0 {
			label = 1
			out = m.WordOut.Row(target)
		} else {
			neg := m.Vocab.SampleNegative(rng, target)
			if neg == target || neg < vocab.NumReserved {
				continue
			}
			label = 0
			out = m.WordOut.Row(neg)
		}
		f := vec.Sigmoid(vec.Dot(input, out))
		g := alpha * (label - f)
		grad.AddScaled(g, out)
		if updateWords {
			out.AddScaled(g, input)
		}
	}
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.Cfg.Dim }

// DocVector returns the trained vector of corpus document i.
func (m *Model) DocVector(i int) vec.Vector { return m.Docs.Row(i).Clone() }

// Infer embeds an unseen token sequence by fitting a fresh document vector
// against the frozen word matrices. The rng is derived from the model seed
// and the tokens, so inference is deterministic per input.
func (m *Model) Infer(tokens []string) vec.Vector {
	ids := m.Vocab.Encode(tokens)
	var h int64 = 1469598103934665603
	for _, id := range ids {
		h = (h ^ int64(id)) * 1099511628211
	}
	rng := rand.New(rand.NewSource(m.Cfg.Seed ^ h))
	docVec := vec.NewRandom(rng, m.Cfg.Dim, 0.5/float64(m.Cfg.Dim))
	ctx := vec.New(m.Cfg.Dim)
	grad := vec.New(m.Cfg.Dim)
	alpha0 := m.Cfg.Alpha
	for e := 0; e < m.Cfg.InferEpochs; e++ {
		alpha := alpha0 - (alpha0-m.Cfg.MinAlpha)*float64(e)/float64(m.Cfg.InferEpochs)
		m.trainDoc(rng, docVec, ids, alpha, false, ctx, grad)
	}
	return docVec
}

// InferBatch embeds a batch of token sequences, running inference once per
// distinct sequence: Infer is deterministic per input, so duplicates — which
// dominate production workloads — share the first occurrence's vector. The
// returned slice is index-aligned with docs; aliased vectors must be treated
// as immutable by callers.
func (m *Model) InferBatch(docs [][]string) []vec.Vector {
	out := make([]vec.Vector, len(docs))
	seen := make(map[string]int, len(docs))
	for i, doc := range docs {
		key := strings.Join(doc, "\x00")
		if j, ok := seen[key]; ok {
			out[i] = out[j]
			continue
		}
		seen[key] = i
		out[i] = m.Infer(doc)
	}
	return out
}

// modelGob is the serialized form of Model.
type modelGob struct {
	Cfg             Config
	Words           []string
	Counts          []int64
	Total           int64
	WordIn, WordOut []float64
	Docs            []float64
	NumDocs         int
}

// Save writes the model in gob format.
func (m *Model) Save(w io.Writer) error {
	words := make([]string, m.Vocab.Size())
	counts := make([]int64, m.Vocab.Size())
	for i := 0; i < m.Vocab.Size(); i++ {
		words[i] = m.Vocab.Word(i)
		counts[i] = m.Vocab.Count(i)
	}
	g := modelGob{
		Cfg:     m.Cfg,
		Words:   words,
		Counts:  counts,
		Total:   m.Vocab.TotalTokens(),
		WordIn:  m.WordIn.Data,
		WordOut: m.WordOut.Data,
		Docs:    m.Docs.Data,
		NumDocs: m.Docs.Rows,
	}
	return gob.NewEncoder(w).Encode(&g)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var g modelGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("doc2vec: load: %w", err)
	}
	v := vocab.Restore(g.Words, g.Counts, g.Total)
	size := len(g.Words)
	m := &Model{
		Cfg:     g.Cfg,
		Vocab:   v,
		WordIn:  &vec.Matrix{Rows: size, Cols: g.Cfg.Dim, Data: g.WordIn},
		WordOut: &vec.Matrix{Rows: size, Cols: g.Cfg.Dim, Data: g.WordOut},
		Docs:    &vec.Matrix{Rows: g.NumDocs, Cols: g.Cfg.Dim, Data: g.Docs},
	}
	return m, nil
}
