package snowgen

import (
	"strings"
	"testing"

	"querc/internal/sqlparse"
)

func smallOptions() Options {
	return Options{
		Accounts: []AccountSpec{
			{Name: "a1", Users: 4, Queries: 200, SharedFraction: 0.7, Dialect: DialectSnow},
			{Name: "a2", Users: 3, Queries: 150, SharedFraction: 0.0, Dialect: DialectTSQL},
			{Name: "a3", Users: 5, Queries: 100, SharedFraction: 0.1, Dialect: DialectAnsi},
		},
		Seed: 42,
	}
}

func TestGenerateCountsAndLabels(t *testing.T) {
	qs := Generate(smallOptions())
	if len(qs) != 450 {
		t.Fatalf("total queries: %d", len(qs))
	}
	perAccount := map[string]int{}
	users := map[string]map[string]bool{}
	for _, q := range qs {
		perAccount[q.Account]++
		if users[q.Account] == nil {
			users[q.Account] = map[string]bool{}
		}
		users[q.Account][q.User] = true
		if q.SQL == "" || q.User == "" || q.Cluster == "" {
			t.Fatalf("incomplete record: %+v", q)
		}
		if !strings.HasPrefix(q.User, q.Account+"_user") {
			t.Fatalf("user %q not namespaced under account %q", q.User, q.Account)
		}
		if q.RuntimeMS <= 0 || q.MemoryMB <= 0 {
			t.Fatalf("non-positive resource labels: %+v", q)
		}
	}
	if perAccount["a1"] != 200 || perAccount["a2"] != 150 || perAccount["a3"] != 100 {
		t.Fatalf("per-account counts: %v", perAccount)
	}
	if len(users["a1"]) != 4 || len(users["a2"]) != 3 || len(users["a3"]) != 5 {
		t.Fatalf("user counts: a1=%d a2=%d a3=%d", len(users["a1"]), len(users["a2"]), len(users["a3"]))
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(smallOptions())
	b := Generate(smallOptions())
	for i := range a {
		if a[i].SQL != b[i].SQL || a[i].User != b[i].User {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestTimestampsIncrease(t *testing.T) {
	qs := Generate(smallOptions())
	for i := 1; i < len(qs); i++ {
		if qs[i].Timestamp < qs[i-1].Timestamp {
			t.Fatalf("timestamps must be non-decreasing at %d", i)
		}
	}
}

// TestSharedFractionDrivesDuplicates verifies the Table 2 mechanism: a
// high-sharing account has many users issuing byte-identical queries; a
// zero-sharing account has none.
func TestSharedFractionDrivesDuplicates(t *testing.T) {
	qs := Generate(smallOptions())
	dupUsers := func(account string) int {
		users := map[string]map[string]bool{}
		for _, q := range qs {
			if q.Account != account {
				continue
			}
			if users[q.SQL] == nil {
				users[q.SQL] = map[string]bool{}
			}
			users[q.SQL][q.User] = true
		}
		multi := 0
		for _, u := range users {
			if len(u) > 1 {
				multi++
			}
		}
		return multi
	}
	if dupUsers("a1") == 0 {
		t.Fatal("high-sharing account should have multi-user duplicate queries")
	}
	if dupUsers("a2") != 0 {
		t.Fatal("zero-sharing account should have no multi-user duplicates")
	}
}

// TestSchemasAreAccountDistinct verifies the Table 1 mechanism: accounts
// reference (mostly) disjoint table names.
func TestSchemasAreAccountDistinct(t *testing.T) {
	qs := Generate(smallOptions())
	tables := map[string]map[string]bool{}
	for _, q := range qs {
		sum := sqlparse.Parse(q.SQL)
		for _, name := range sum.TableNames() {
			if tables[name] == nil {
				tables[name] = map[string]bool{}
			}
			tables[name][q.Account] = true
		}
	}
	crossAccount := 0
	for _, accs := range tables {
		if len(accs) > 1 {
			crossAccount++
		}
	}
	if crossAccount > 0 {
		t.Fatalf("%d table names shared across accounts", crossAccount)
	}
}

func TestDialectSurface(t *testing.T) {
	qs := Generate(smallOptions())
	var sawTop, sawLimit bool
	for _, q := range qs {
		switch q.Account {
		case "a2": // TSQL
			if strings.Contains(q.SQL, " limit ") {
				t.Fatalf("TSQL account emitted LIMIT: %q", q.SQL)
			}
			if strings.Contains(q.SQL, "top ") {
				sawTop = true
			}
		case "a3": // ANSI
			if strings.Contains(q.SQL, "top ") {
				t.Fatalf("ANSI account emitted TOP: %q", q.SQL)
			}
			if strings.Contains(q.SQL, " limit ") {
				sawLimit = true
			}
		}
	}
	if !sawTop || !sawLimit {
		t.Fatalf("dialect markers missing: top=%v limit=%v", sawTop, sawLimit)
	}
}

func TestGeneratedSQLParses(t *testing.T) {
	qs := Generate(smallOptions())
	for i, q := range qs {
		if i > 100 {
			break
		}
		sum := sqlparse.Parse(q.SQL)
		if len(sum.TableNames()) == 0 {
			t.Fatalf("no tables parsed from %q", q.SQL)
		}
	}
}

func TestPaperProfileShape(t *testing.T) {
	specs := PaperProfile(1.0)
	if len(specs) != 13 {
		t.Fatalf("paper profile accounts: %d", len(specs))
	}
	if specs[0].Queries != 73881 || specs[0].Users != 28 {
		t.Fatalf("top account: %+v", specs[0])
	}
	// The two dominant accounts carry heavy sharing; the tail does not.
	if specs[0].SharedFraction < 0.5 || specs[1].SharedFraction < 0.5 {
		t.Fatal("dominant accounts must be repetition-heavy")
	}
	if specs[3].SharedFraction > 0.1 {
		t.Fatalf("acct04 should be low-sharing: %+v", specs[3])
	}
	// Scaling keeps minimums sane.
	small := PaperProfile(0.001)
	for _, s := range small {
		if s.Queries < 40 {
			t.Fatalf("scaled account too small: %+v", s)
		}
	}
}

// TestTransientFailuresRateAndBurstiness: the transient stream hits roughly
// its requested steady-state rate, emits only the transient codes, and
// clusters failures into runs (the Markov chain's whole point) rather than
// sprinkling them independently.
func TestTransientFailuresRateAndBurstiness(t *testing.T) {
	opts := Options{
		Accounts: []AccountSpec{{
			Name: "a1", Users: 4, Queries: 8000,
			TransientFailures: 0.1, Dialect: DialectSnow,
		}},
		Seed: 7,
	}
	qs := Generate(opts)
	var transient, runs int
	inRun := false
	for _, q := range qs {
		if IsTransientError(q.ErrorCode) {
			transient++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	rate := float64(transient) / float64(len(qs))
	if rate < 0.05 || rate > 0.2 {
		t.Fatalf("transient rate %.3f, want ~0.1", rate)
	}
	// Independent 10%% failures over 8k queries would give ~runs == transient;
	// bursts of mean length ~5 give far fewer distinct runs.
	if meanRun := float64(transient) / float64(runs); meanRun < 2 {
		t.Fatalf("mean burst length %.2f, want bursty (>= 2)", meanRun)
	}
	// Both failure modes occur across incidents. (Within one incident the
	// code is constant, but adjacent incidents can merge into one observed
	// run, so per-run constancy is not assertable from the stream alone.)
	seen := map[string]bool{}
	for _, q := range qs {
		if IsTransientError(q.ErrorCode) {
			seen[q.ErrorCode] = true
		}
	}
	if len(seen) != 2 {
		t.Fatalf("transient codes seen = %v, want both", seen)
	}
}

// TestTransientFailuresOffIsByteIdentical: the knob at zero consumes no
// randomness — the stream is identical to one generated before the knob
// existed.
func TestTransientFailuresOffIsByteIdentical(t *testing.T) {
	a := Generate(smallOptions())
	withKnob := smallOptions()
	for i := range withKnob.Accounts {
		withKnob.Accounts[i].TransientFailures = 0
	}
	b := Generate(withKnob)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs with the knob at zero: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTransientErrorCodeHelpers(t *testing.T) {
	if !IsTransientError("BACKEND_UNAVAILABLE") || !IsTransientError("CONNECTION_RESET") {
		t.Fatal("transient codes not recognized")
	}
	if IsTransientError("OUT_OF_MEMORY") || IsTransientError("") {
		t.Fatal("non-transient codes misclassified")
	}
	m := TransientErrorCodes()
	if !m["BACKEND_UNAVAILABLE"] || !m["CONNECTION_RESET"] || len(m) != 2 {
		t.Fatalf("TransientErrorCodes() = %v", m)
	}
	m["BACKEND_UNAVAILABLE"] = false // callers own the returned map
	if !TransientErrorCodes()["BACKEND_UNAVAILABLE"] {
		t.Fatal("returned map is shared state")
	}
}

func TestErrorLabelsPresent(t *testing.T) {
	opts := smallOptions()
	opts.Accounts[0].Queries = 3000 // enough volume for rare errors
	qs := Generate(opts)
	errs := 0
	for _, q := range qs {
		if q.ErrorCode != "" {
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("expected some error labels in a 3k query stream")
	}
	if float64(errs) > 0.2*float64(len(qs)) {
		t.Fatalf("error rate implausibly high: %d/%d", errs, len(qs))
	}
}
