// Package snowgen generates the multi-tenant, multi-user SQL workload that
// stands in for the paper's 500k-query Snowflake production corpus (§5.2).
//
// The generator reproduces the two statistical properties the labeling
// experiments depend on:
//
//  1. Accounts use (mostly) disjoint schemas: each account gets a private
//     namespace of table and column names, plus per-account dialect quirks.
//     Account prediction from raw tokens is therefore learnable — near
//     perfect with a sequence model (paper Table 1, 99.1%).
//
//  2. User separability varies per account: each user has private query
//     templates with user-specific literals, but a configurable fraction of
//     an account's traffic comes from an account-shared pool of *literally
//     identical* query texts issued by many users. Accounts dominated by such
//     repetitive traffic are exactly the ones whose user-prediction accuracy
//     collapses in paper Table 2 ("multiple users running the exact same
//     query, making the users nearly indistinguishable").
//
// Every query carries the training labels the paper lists for log ingestion:
// user, account, cluster, runtime, memory, and error code.
package snowgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// AccountSpec configures one synthetic customer account.
type AccountSpec struct {
	Name           string
	Users          int
	Queries        int
	SharedFraction float64 // fraction of queries drawn from the shared duplicate pool
	// Analytics is the fraction of queries drawn from account-shared
	// multi-join aggregate templates (3-5 joins) — the working-set monsters
	// whose memoryMB labels dwarf the transactional mix. Zero (the default)
	// consumes no extra randomness, so pre-existing seeds generate
	// byte-identical workloads.
	Analytics float64
	// TransientFailures is the steady-state fraction of queries labeled with
	// a correlated transient infrastructure failure (errorCode
	// "BACKEND_UNAVAILABLE" or "CONNECTION_RESET"). Failures arrive in
	// bursts via a two-state Markov chain — once a backend incident starts,
	// consecutive queries keep failing until it clears — mirroring how real
	// transient errors cluster in time rather than arriving independently.
	// Zero (the default) consumes no extra randomness, so pre-existing seeds
	// generate byte-identical workloads.
	TransientFailures float64
	Tables            int // schema size (default 12)
	Dialect           Dialect
}

// transientCodes are the errorCode values the correlated transient-failure
// stream emits; one code is drawn per burst (a single incident has a single
// failure mode).
var transientCodes = []string{"BACKEND_UNAVAILABLE", "CONNECTION_RESET"}

// IsTransientError reports whether an errorCode label came from the
// transient-failure stream (and is therefore retriable), as opposed to a
// query-shape error like OUT_OF_MEMORY.
func IsTransientError(code string) bool {
	for _, c := range transientCodes {
		if code == c {
			return true
		}
	}
	return false
}

// TransientErrorCodes returns the transient errorCode set as a fresh lookup
// map, in the shape sched.FaultConfig.ErrorCodes consumes.
func TransientErrorCodes() map[string]bool {
	m := make(map[string]bool, len(transientCodes))
	for _, c := range transientCodes {
		m[c] = true
	}
	return m
}

// Dialect selects per-account SQL surface quirks.
type Dialect int

// Dialects.
const (
	DialectAnsi Dialect = iota // LIMIT n
	DialectTSQL                // SELECT TOP n, [bracket] identifiers
	DialectSnow                // ILIKE, QUALIFY, :: casts
)

// Query is one generated log record (the paper's "labeled query"). The JSON
// tags pin workloadgen's output format, execution labels included, so
// scheduling experiments can replay a dumped workload offline with its
// ground-truth runtimes.
type Query struct {
	SQL       string  `json:"sql"`
	Account   string  `json:"account"`
	User      string  `json:"user"`
	Cluster   string  `json:"cluster"`
	Timestamp int64   `json:"timestamp"` // milliseconds since epoch
	RuntimeMS float64 `json:"runtimeMS"` // execution label for resource prediction
	MemoryMB  float64 `json:"memoryMB"`
	ErrorCode string  `json:"errorCode"` // "" when the query succeeded
}

// Options configure Generate.
type Options struct {
	Accounts []AccountSpec
	Seed     int64
	StartTS  int64 // first timestamp (ms); defaults to a fixed epoch
}

// PaperProfile returns account specs shaped like paper Table 2: thirteen
// accounts, the two largest dominated by duplicate shared queries (~69% of
// their traffic, ~65% of the corpus), a mid-size account with heavy sharing,
// and the rest with low sharing and high user separability. scale multiplies
// all query counts (1.0 reproduces the paper's ~176k labeled corpus; tests
// and default benches use much smaller scales).
func PaperProfile(scale float64) []AccountSpec {
	if scale <= 0 {
		scale = 1
	}
	n := func(x int) int {
		v := int(float64(x) * scale)
		if v < 100 {
			v = 100
		}
		return v
	}
	return []AccountSpec{
		{Name: "acct01", Users: 28, Queries: n(73881), SharedFraction: 0.69, Dialect: DialectSnow},
		{Name: "acct02", Users: 10, Queries: n(55333), SharedFraction: 0.72, Dialect: DialectSnow},
		{Name: "acct03", Users: 46, Queries: n(18487), SharedFraction: 0.55, Dialect: DialectAnsi},
		{Name: "acct04", Users: 21, Queries: n(5471), SharedFraction: 0.02, Dialect: DialectTSQL},
		{Name: "acct05", Users: 6, Queries: n(4213), SharedFraction: 0.35, Dialect: DialectAnsi},
		{Name: "acct06", Users: 12, Queries: n(3894), SharedFraction: 0.0, Dialect: DialectSnow},
		{Name: "acct07", Users: 9, Queries: n(3373), SharedFraction: 0.0, Dialect: DialectAnsi},
		{Name: "acct08", Users: 6, Queries: n(2867), SharedFraction: 0.0, Dialect: DialectTSQL},
		{Name: "acct09", Users: 15, Queries: n(1953), SharedFraction: 0.08, Dialect: DialectSnow},
		{Name: "acct10", Users: 4, Queries: n(1924), SharedFraction: 0.01, Dialect: DialectAnsi},
		{Name: "acct11", Users: 9, Queries: n(1776), SharedFraction: 0.03, Dialect: DialectSnow},
		{Name: "acct12", Users: 5, Queries: n(1699), SharedFraction: 0.0, Dialect: DialectTSQL},
		{Name: "acct13", Users: 12, Queries: n(1108), SharedFraction: 0.01, Dialect: DialectAnsi},
	}
}

// TrainingProfile returns a broader, flatter mix of accounts used to train
// embedders (standing in for the paper's separate 500k-query training
// corpus). It shares no account names with PaperProfile, exercising the
// pre-train-on-other-tenants scenario.
func TrainingProfile(scale float64) []AccountSpec {
	if scale <= 0 {
		scale = 1
	}
	specs := make([]AccountSpec, 0, 20)
	for i := 0; i < 20; i++ {
		specs = append(specs, AccountSpec{
			Name:           fmt.Sprintf("train%02d", i+1),
			Users:          3 + i%9,
			Queries:        int(25000*scale)/20 + 40,
			SharedFraction: float64(i%4) * 0.15,
			Dialect:        Dialect(i % 3),
		})
	}
	return specs
}

// Generate produces the labeled workload, interleaving accounts in a
// deterministic round-robin "arrival" order.
func Generate(opt Options) []Query {
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.StartTS == 0 {
		opt.StartTS = 1_546_300_800_000 // 2019-01-01, the paper's venue year
	}
	var streams [][]Query
	for ai := range opt.Accounts {
		streams = append(streams, generateAccount(rng, &opt.Accounts[ai], ai))
	}
	// Interleave by repeatedly draining a random non-empty stream, so the
	// final log looks like concurrent tenants.
	var out []Query
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	idx := make([]int, len(streams))
	ts := opt.StartTS
	for len(out) < total {
		si := rng.Intn(len(streams))
		if idx[si] >= len(streams[si]) {
			continue
		}
		q := streams[si][idx[si]]
		idx[si]++
		ts += int64(rng.Intn(2000))
		q.Timestamp = ts
		out = append(out, q)
	}
	return out
}

// generateAccount builds one account's schema, templates, and query stream.
func generateAccount(rng *rand.Rand, spec *AccountSpec, acctIdx int) []Query {
	if spec.Tables <= 0 {
		spec.Tables = 12
	}
	if spec.Users <= 0 {
		spec.Users = 1
	}
	sc := newSchema(rng, spec.Name, spec.Tables)
	cluster := fmt.Sprintf("cluster_%02d", acctIdx%6+1)

	// Shared pool: each shared template is rendered exactly once, so every
	// emission of it is byte-identical — which is what destroys user
	// separability in the repetition-heavy accounts of paper Table 2.
	nShared := 4 + rng.Intn(4)
	shared := make([]string, nShared)
	for i := range shared {
		shared[i] = newTemplate(rng, sc, spec.Dialect, -1).render(rng)
	}

	// Per-user private templates with user-flavoured literals.
	type user struct {
		name      string
		templates []template
	}
	users := make([]user, spec.Users)
	for u := range users {
		users[u].name = fmt.Sprintf("%s_user%02d", spec.Name, u+1)
		n := 3 + rng.Intn(4)
		users[u].templates = make([]template, n)
		for t := range users[u].templates {
			users[u].templates[t] = newTemplate(rng, sc, spec.Dialect, u)
		}
	}

	// Analytics pool: multi-join aggregate shapes shared account-wide. Built
	// (and drawn from) only when the knob is on, so Analytics == 0 accounts
	// consume exactly the randomness they did before the knob existed.
	var analytics []template
	if spec.Analytics > 0 {
		analytics = make([]template, 2+rng.Intn(3))
		for i := range analytics {
			analytics[i] = newAnalyticsTemplate(rng, sc, spec.Dialect)
		}
	}

	// Transient-failure Markov chain: burst exit probability 0.25 gives a
	// mean incident length of ~5 queries; the entry probability is solved so
	// the chain's stationary burst share equals the requested failure rate
	// (every in-burst query fails).
	const burstExit = 0.25
	rate := spec.TransientFailures
	if rate > 0.5 {
		rate = 0.5
	}
	enterProb := burstExit * rate / (1 - rate)
	var burst bool
	var burstCode string

	out := make([]Query, 0, spec.Queries)
	for i := 0; i < spec.Queries; i++ {
		u := rng.Intn(len(users))
		var sql string
		if spec.Analytics > 0 && rng.Float64() < spec.Analytics {
			sql = analytics[rng.Intn(len(analytics))].render(rng)
		} else if rng.Float64() < spec.SharedFraction {
			sql = shared[rng.Intn(len(shared))]
		} else {
			tpl := users[u].templates[rng.Intn(len(users[u].templates))]
			sql = tpl.render(rng)
		}
		q := Query{
			SQL:     sql,
			Account: spec.Name,
			User:    users[u].name,
			Cluster: cluster,
		}
		q.RuntimeMS, q.MemoryMB, q.ErrorCode = executionLabels(rng, sql)
		// Drawn only when the knob is on: TransientFailures == 0 accounts
		// consume exactly the randomness they did before the knob existed.
		if rate > 0 {
			if burst {
				// The incident overrides shape-correlated errors: a dead
				// backend fails every query the same way.
				q.ErrorCode = burstCode
				if rng.Float64() < burstExit {
					burst = false
				}
			} else if rng.Float64() < enterProb {
				burst = true
				burstCode = transientCodes[rng.Intn(len(transientCodes))]
				q.ErrorCode = burstCode
			}
		}
		out = append(out, q)
	}
	return out
}

// executionLabels synthesizes runtime/memory/error labels correlated with
// query shape (joins and aggregates are slower and hungrier; very long
// queries occasionally hit resource errors) so resource-prediction labelers
// have real signal to learn.
func executionLabels(rng *rand.Rand, sql string) (runtimeMS, memMB float64, errCode string) {
	joins := strings.Count(sql, " join ") + strings.Count(sql, " JOIN ")
	aggs := strings.Count(sql, "sum(") + strings.Count(sql, "count(") + strings.Count(sql, "avg(")
	groups := strings.Count(sql, "group by") + strings.Count(sql, "GROUP BY")
	base := 40 + 25*float64(joins) + 12*float64(aggs) + 18*float64(groups) + 0.08*float64(len(sql))
	runtimeMS = base * (0.5 + rng.ExpFloat64())
	memMB = 32 + 64*float64(joins+groups)*(0.5+rng.Float64())
	switch {
	case joins >= 3 && rng.Float64() < 0.05:
		errCode = "OUT_OF_MEMORY"
	case len(sql) > 900 && rng.Float64() < 0.04:
		errCode = "STATEMENT_TIMEOUT"
	case rng.Float64() < 0.002:
		errCode = "INTERNAL_ERROR"
	}
	return runtimeMS, memMB, errCode
}
