package snowgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// schema is one account's private namespace. Table and column names embed an
// account-specific code, mirroring the paper's observation that "different
// customers use primarily different schemas" — the signal that makes account
// prediction from raw tokens nearly perfect.
type schema struct {
	account string
	code    string // short per-account token prefix
	tables  []tableDef
}

type tableDef struct {
	name string
	cols []string
}

var domainWords = []string{
	"sales", "events", "clicks", "users", "inventory", "shipments",
	"payments", "sessions", "logs", "metrics", "orders", "billing",
	"devices", "campaigns", "leads", "returns", "stock", "audits",
}

var columnWords = []string{
	"id", "created_at", "amount", "status", "region", "category",
	"price", "qty", "score", "name", "ts", "country", "device",
	"channel", "revenue", "cost", "segment", "tier", "flag", "total",
}

func newSchema(rng *rand.Rand, account string, tables int) *schema {
	code := fmt.Sprintf("t%da", rng.Intn(90)+10)
	sc := &schema{account: account, code: code}
	perm := rng.Perm(len(domainWords))
	for i := 0; i < tables; i++ {
		domain := domainWords[perm[i%len(perm)]]
		name := fmt.Sprintf("%s_%s_%d", code, domain, i+1)
		ncols := 5 + rng.Intn(6)
		cols := make([]string, 0, ncols)
		cperm := rng.Perm(len(columnWords))
		for c := 0; c < ncols; c++ {
			base := columnWords[cperm[c%len(columnWords)]]
			// Most columns carry the account code; a few stay generic so
			// that cross-account vocabulary overlap is non-zero.
			if c%4 == 3 {
				cols = append(cols, base)
			} else {
				cols = append(cols, code+"_"+base)
			}
		}
		sc.tables = append(sc.tables, tableDef{name: name, cols: cols})
	}
	return sc
}

// template is one parameterized query shape. Rendering draws literals from
// small per-template pools, so one user's instances look alike while staying
// distinguishable from other users' templates.
type template struct {
	sc         *schema
	dialect    Dialect
	kind       int // 0 select, 1 insert, 2 aggregate select, 3 update
	main       int
	join       int   // -1 when absent
	extraJoins []int // additional join tables (analytics templates only)
	filters    []int
	ops        []string
	pools      [][]string
	projCols   []int
	aggFn      string
	aggCol     int
	groupBy    int // column index or -1
	orderBy    int // column index or -1
	limit      int // 0 when absent
}

// newTemplate samples a fresh query shape. userIdx flavours the literal
// pools (user-specific constants) and biases table choice toward the user's
// preferred tables — real analysts work a stable slice of the schema, and
// that slice is a large part of what makes users identifiable from syntax.
// Pass a negative userIdx for account-shared templates.
func newTemplate(rng *rand.Rand, sc *schema, dialect Dialect, userIdx int) template {
	t := template{sc: sc, dialect: dialect, join: -1, groupBy: -1, orderBy: -1}
	t.main = rng.Intn(len(sc.tables))
	if userIdx >= 0 && len(sc.tables) > 2 {
		// Each user works mostly within a 3-table neighbourhood anchored at
		// a user-specific offset into the schema.
		anchor := (userIdx * 5) % len(sc.tables)
		t.main = (anchor + rng.Intn(3)) % len(sc.tables)
	}
	t.kind = [4]int{0, 0, 2, 2}[rng.Intn(4)]
	if rng.Float64() < 0.1 {
		t.kind = 1 + 2*rng.Intn(2) // occasionally INSERT or UPDATE
	}
	mt := sc.tables[t.main]

	nf := 1 + rng.Intn(3)
	for f := 0; f < nf && f < len(mt.cols); f++ {
		ci := rng.Intn(len(mt.cols))
		t.filters = append(t.filters, ci)
		t.ops = append(t.ops, pickOp(rng, dialect))
		t.pools = append(t.pools, literalPool(rng, userIdx))
	}
	np := 1 + rng.Intn(4)
	seen := map[int]bool{}
	for pi := 0; pi < np; pi++ {
		ci := rng.Intn(len(mt.cols))
		if !seen[ci] {
			seen[ci] = true
			t.projCols = append(t.projCols, ci)
		}
	}
	if rng.Float64() < 0.45 && len(sc.tables) > 1 {
		t.join = rng.Intn(len(sc.tables))
		if t.join == t.main {
			t.join = (t.join + 1) % len(sc.tables)
		}
	}
	if t.kind == 2 {
		t.aggFn = []string{"sum", "count", "avg", "max"}[rng.Intn(4)]
		t.aggCol = rng.Intn(len(mt.cols))
		t.groupBy = t.projCols[0]
	}
	if rng.Float64() < 0.5 {
		t.orderBy = t.projCols[rng.Intn(len(t.projCols))]
	}
	if rng.Float64() < 0.4 {
		t.limit = []int{10, 50, 100, 500, 1000}[rng.Intn(5)]
	}
	return t
}

// newAnalyticsTemplate samples a multi-join aggregate shape — the
// "analytics monster" end of the workload, whose 3-5 joins drive the
// synthetic memoryMB execution label several times past the transactional
// mix. Templates are account-shared (generic literal pools), mirroring how
// scheduled reporting queries look identical across a tenant's users.
func newAnalyticsTemplate(rng *rand.Rand, sc *schema, dialect Dialect) template {
	t := template{sc: sc, dialect: dialect, kind: 2, join: -1, groupBy: -1, orderBy: -1}
	t.main = rng.Intn(len(sc.tables))
	mt := sc.tables[t.main]
	nf := 1 + rng.Intn(2)
	for f := 0; f < nf; f++ {
		t.filters = append(t.filters, rng.Intn(len(mt.cols)))
		t.ops = append(t.ops, pickOp(rng, dialect))
		t.pools = append(t.pools, literalPool(rng, -1))
	}
	t.projCols = []int{rng.Intn(len(mt.cols))}
	t.join = rng.Intn(len(sc.tables))
	if t.join == t.main && len(sc.tables) > 1 {
		t.join = (t.join + 1) % len(sc.tables)
	}
	for extra := 2 + rng.Intn(3); extra > 0; extra-- {
		t.extraJoins = append(t.extraJoins, rng.Intn(len(sc.tables)))
	}
	t.aggFn = []string{"sum", "count", "avg", "max"}[rng.Intn(4)]
	t.aggCol = rng.Intn(len(mt.cols))
	t.groupBy = t.projCols[0]
	return t
}

func pickOp(rng *rand.Rand, dialect Dialect) string {
	ops := []string{"=", "=", ">", "<", ">=", "<>", "like", "in"}
	op := ops[rng.Intn(len(ops))]
	if op == "like" && dialect == DialectSnow && rng.Float64() < 0.5 {
		op = "ilike"
	}
	return op
}

// literalPool builds 2-4 literal strings. User-flavoured pools embed the
// user's numeric range and favourite strings; shared pools use generic ones.
func literalPool(rng *rand.Rand, userIdx int) []string {
	n := 2 + rng.Intn(3)
	out := make([]string, n)
	base := 1000 * (userIdx + 1)
	if userIdx < 0 {
		base = 500
	}
	words := []string{"active", "pending", "closed", "eu-west", "us-east", "gold", "silver", "mobile", "web"}
	for i := range out {
		if rng.Float64() < 0.5 {
			out[i] = fmt.Sprintf("%d", base+rng.Intn(997))
		} else {
			out[i] = "'" + words[rng.Intn(len(words))] + "'"
		}
	}
	return out
}

// render emits one SQL instance of the template.
func (t template) render(rng *rand.Rand) string {
	mt := t.sc.tables[t.main]
	var b strings.Builder
	switch t.kind {
	case 1: // INSERT
		fmt.Fprintf(&b, "insert into %s (%s) values (", mt.name, strings.Join(colNames(mt, t.projCols), ", "))
		for i := range t.projCols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.pools[i%len(t.pools)][rng.Intn(len(t.pools[i%len(t.pools)]))])
		}
		b.WriteString(")")
		return b.String()
	case 3: // UPDATE
		fmt.Fprintf(&b, "update %s set %s = %s where %s %s %s",
			mt.name, mt.cols[t.projCols[0]], t.pools[0][rng.Intn(len(t.pools[0]))],
			mt.cols[t.filters[0]], t.ops[0], t.renderLiteral(rng, 0))
		return b.String()
	}

	b.WriteString("select ")
	if t.dialect == DialectTSQL && t.limit > 0 {
		fmt.Fprintf(&b, "top %d ", t.limit)
	}
	proj := colNames(mt, t.projCols)
	if t.kind == 2 {
		proj = append(proj, fmt.Sprintf("%s(%s)", t.aggFn, mt.cols[t.aggCol]))
	}
	b.WriteString(strings.Join(proj, ", "))
	fmt.Fprintf(&b, " from %s", t.quoteTable(mt.name))
	if t.join >= 0 {
		jt := t.sc.tables[t.join]
		fmt.Fprintf(&b, " join %s on %s.%s = %s.%s",
			t.quoteTable(jt.name), mt.name, mt.cols[0], jt.name, jt.cols[0])
	}
	for _, ji := range t.extraJoins {
		jt := t.sc.tables[ji]
		fmt.Fprintf(&b, " join %s on %s.%s = %s.%s",
			t.quoteTable(jt.name), mt.name, mt.cols[0], jt.name, jt.cols[0])
	}
	for i, fi := range t.filters {
		if i == 0 {
			b.WriteString(" where ")
		} else {
			b.WriteString(" and ")
		}
		fmt.Fprintf(&b, "%s %s %s", mt.cols[fi], t.ops[i], t.renderLiteral(rng, i))
	}
	if t.groupBy >= 0 {
		fmt.Fprintf(&b, " group by %s", mt.cols[t.groupBy])
	}
	if t.orderBy >= 0 {
		fmt.Fprintf(&b, " order by %s", mt.cols[t.orderBy])
		if t.dialect == DialectSnow && rng.Float64() < 0.3 {
			b.WriteString(" desc")
		}
	}
	if t.limit > 0 && t.dialect != DialectTSQL {
		fmt.Fprintf(&b, " limit %d", t.limit)
	}
	return b.String()
}

func (t template) renderLiteral(rng *rand.Rand, i int) string {
	pool := t.pools[i%len(t.pools)]
	lit := pool[rng.Intn(len(pool))]
	op := t.ops[i%len(t.ops)]
	switch op {
	case "in":
		a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
		return "(" + a + ", " + b + ")"
	case "like", "ilike":
		trimmed := strings.Trim(lit, "'")
		return "'%" + trimmed + "%'"
	}
	if t.dialect == DialectSnow && strings.HasPrefix(lit, "'") && rng.Float64() < 0.15 {
		return lit + "::varchar"
	}
	return lit
}

func (t template) quoteTable(name string) string {
	if t.dialect == DialectTSQL {
		return "[" + name + "]"
	}
	return name
}

func colNames(t tableDef, idx []int) []string {
	out := make([]string, len(idx))
	for i, ci := range idx {
		out[i] = t.cols[ci]
	}
	return out
}
